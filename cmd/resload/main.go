// Command resload is the load generator for resilientd and resrouter:
// it drives a running service with a deterministic concurrent mix of
// solve requests (matrices × solvers × schemes), measures throughput and
// latency percentiles, and cross-checks determinism — every response for
// the same request cell must carry the same residual-history hash.
//
//	resload -addr http://127.0.0.1:8723 -n 64 -c 8
//	resload -addr ... -json -out load.json
//	resload -addr ... -check        # nonzero exit unless all OK and deterministic
//
// Sharded deployments are verified end to end with the router modes:
//
//	resload -addr http://127.0.0.1:8900 -router -check
//	resload -addr ... -router -shards http://127.0.0.1:9001,http://127.0.0.1:9002 -check
//
// -router treats the target as a resrouter (its /routerz must answer and
// is folded into the record); -shards re-issues one request per cell
// directly against the listed shard addresses and fails -check unless
// every direct residual hash is bit-identical to the routed one — the
// determinism gate across routing paths, before and after failover.
//
// Recorded campaigns replace the flag axes for production-shaped replay:
//
//	resload -addr ... -record campaign.json     # write the mix + observed hashes
//	resload -addr ... -replay campaign.json -check
//
// A replayed run drives the recorded request mix (and request count and
// concurrency, unless overridden) and fails -check unless every cell
// reproduces its recorded residual hash.
//
// Tail-latency modes:
//
//	resload -addr ... -stream -check          # every solve streamed as SSE
//	resload -addr ... -router -hedge -check   # unhedged-vs-hedged A/B
//
// -stream issues every request with Accept: text/event-stream, verifies
// each frame and the stream trailer, and re-checks every terminal hash
// against a buffered solve. -hedge runs a discarded warmup, an unhedged
// pass (per-request opt-out header), then a hedged pass, and -check
// requires the hedged P99 to beat the unhedged one with at least one
// hedge armed and won.
//
// The emitted record is schema-versioned JSON in the same style as the
// campaign and benchmark tooling, so CI can gate on it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/harness"
	"repro/internal/obs"
)

// Schema identifies the resload record layout; bump on incompatible
// changes.
const Schema = 1

// Record is one load run.
type Record struct {
	Schema   int    `json:"schema"`
	Addr     string `json:"addr"`
	Requests int    `json:"requests"`
	// Concurrency is the number of client workers that issued them.
	Concurrency int `json:"concurrency"`
	// Outcome counts. OK are HTTP 200 with no solve error; Rejected are
	// 429 (queue full), Expired are 504 (deadline), SolveErrors are 200s
	// whose solver failed, TransportErrors never got a response.
	OK              int `json:"ok"`
	SolveErrors     int `json:"solve_errors"`
	Rejected        int `json:"rejected"`
	Expired         int `json:"expired"`
	TransportErrors int `json:"transport_errors"`
	OtherErrors     int `json:"other_errors"`
	// DigestMismatches counts responses whose stamped content digest did
	// not match the received bytes — corrupt bytes that reached this
	// client. Must be zero: the router discards corrupt shard responses
	// before relay, so any count here means the last hop corrupted data
	// or the router's verification failed.
	DigestMismatches int `json:"digest_mismatches"`
	// ErrorCodes counts refusals by the machine-readable code of the
	// unified error envelope (e.g. "saturated" vs "expired" vs
	// "draining"), so a mixed failure mode is attributable without
	// guessing from HTTP statuses.
	ErrorCodes map[string]int `json:"error_codes,omitempty"`
	// CacheHits counts responses served from a warm per-matrix entry.
	CacheHits int `json:"cache_hits"`
	// WallSeconds spans first send to last response; Throughput is
	// OK / WallSeconds.
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_rps"`
	// Latency summarises the per-request round-trip times of all
	// responses (errors included — they consumed client time too).
	Latency api.LatencySummary `json:"latency"`
	// Mix reports per-cell determinism: DistinctHashes must be 1 for
	// every cell with at least one OK response.
	Mix           []MixCell `json:"mix"`
	Deterministic bool      `json:"deterministic"`
	// Replay is set when the mix came from a recorded campaign file.
	Replay *ReplayCheck `json:"replay,omitempty"`
	// Direct is set when -shards cross-checked routed hashes against
	// direct single-shard serving.
	Direct *DirectCheck `json:"direct,omitempty"`
	// Batch is set when the mix carried batched cells: each deterministic
	// batched cell's per-RHS hashes re-checked against single solves.
	Batch *BatchCheck `json:"batch,omitempty"`
	// Router is set in -router mode: the target's /routerz snapshot
	// after the run.
	Router *RouterSummary `json:"router,omitempty"`
	// Stream is set in -stream mode: streamed terminal results
	// cross-checked against buffered answers for the same cells.
	Stream *StreamCheck `json:"stream,omitempty"`
	// Hedge is set in -hedge mode: the unhedged-vs-hedged A/B latency
	// comparison.
	Hedge *HedgeCheck `json:"hedge,omitempty"`
}

// StreamCheck reports the -stream mode gates: every request of the main
// pass was a streamed solve, and each deterministic cell's terminal
// hash is re-checked against a buffered solve of the same request.
type StreamCheck struct {
	// Requests counts streamed solves issued; Events the SSE frames
	// decoded (and digest-verified) across all of them.
	Requests int64 `json:"requests"`
	Events   int64 `json:"events"`
	// Checks counts buffered re-issues; Mismatches counts terminal hashes
	// that differed from the buffered hash; Errors counts re-issues that
	// failed outright.
	Checks     int `json:"checks"`
	Mismatches int `json:"mismatches"`
	Errors     int `json:"errors"`
}

// HedgeCheck reports the -hedge A/B experiment: one unhedged pass (the
// per-request opt-out header) and one hedged pass over the identical
// mix, after a discarded warmup that removes the cache-cold bias.
// Both passes' hashes feed the shared determinism gate, so the
// comparison doubles as proof that hedging never perturbed a result.
type HedgeCheck struct {
	Unhedged api.LatencySummary `json:"unhedged"`
	Hedged   api.LatencySummary `json:"hedged"`
}

// ReplayCheck reports how a replayed campaign compared to its recording.
type ReplayCheck struct {
	Source string `json:"source"`
	// RecordedCells counts mix cells that carried a recorded hash;
	// Mismatches counts those whose replayed hash differed.
	RecordedCells int `json:"recorded_cells"`
	Mismatches    int `json:"mismatches"`
}

// BatchCheck reports the batched-vs-single determinism cross-check: every
// right-hand side of a deterministic batched cell is re-solved alone via
// /v1/solve and its residual hash must be bit-identical to the one the
// batch answered for that RHS.
type BatchCheck struct {
	// Checks counts right-hand sides re-issued; Mismatches counts hashes
	// that differed from the batched answer; Errors counts single solves
	// that failed outright.
	Checks     int `json:"checks"`
	Mismatches int `json:"mismatches"`
	Errors     int `json:"errors"`
}

// DirectCheck reports the routed-vs-direct hash cross-check.
type DirectCheck struct {
	Shards []string `json:"shards"`
	// Checks counts cells re-issued directly; Mismatches counts direct
	// hashes that differed from the routed hash; Errors counts direct
	// requests that failed outright.
	Checks     int `json:"checks"`
	Mismatches int `json:"mismatches"`
	Errors     int `json:"errors"`
}

// RouterSummary condenses the target's /routerz after the run.
type RouterSummary struct {
	Shards        int   `json:"shards"`
	HealthyShards int   `json:"healthy_shards"`
	Routed        int64 `json:"routed"`
	Failovers     int64 `json:"failovers"`
	Unroutable    int64 `json:"unroutable"`
	DistinctKeys  int   `json:"distinct_keys"`
	// Integrity echoes the router's end-to-end verification counters;
	// Chaos is present when the router runs a fault-injection plan.
	Integrity api.IntegrityStats `json:"integrity"`
	Chaos     *api.ChaosStats    `json:"chaos,omitempty"`
	// Hedge echoes the router's hedged-read counters.
	Hedge *api.HedgeStats `json:"hedge,omitempty"`
}

// Campaign is the recorded request mix (-record / -replay): the
// schema-versioned file format that lets a production traffic shape be
// replayed against a candidate build or routing topology.
type Campaign struct {
	Schema int `json:"schema"`
	// Requests and Concurrency reproduce the run shape on replay (flags
	// override them when set explicitly).
	Requests    int            `json:"requests"`
	Concurrency int            `json:"concurrency"`
	Cells       []CampaignCell `json:"cells"`
}

// CampaignCell is one recorded request template.
type CampaignCell struct {
	Name    string           `json:"name"`
	Request api.SolveRequest `json:"request"`
	// RHS, when set, makes this a batched cell: the request is posted to
	// /v1/solve/batch with these per-RHS seeds (Request's own seeds are
	// ignored, matching the server's batch semantics).
	RHS []api.BatchRHS `json:"rhs,omitempty"`
	// ResidualHash is the hash the cell answered with when recorded
	// (set only if the cell was deterministic); on replay it becomes
	// the expected value. Batched cells join their per-RHS hashes with
	// "+" in RHS order.
	ResidualHash string `json:"residual_hash,omitempty"`
}

// MixCell is one request template of the mix and its aggregate outcome.
type MixCell struct {
	Name           string `json:"name"`
	Requests       int    `json:"requests"`
	OK             int    `json:"ok"`
	DistinctHashes int    `json:"distinct_hashes"`
	// ResidualHash is the (unique) hash when the cell is deterministic.
	ResidualHash string `json:"residual_hash,omitempty"`
	// RecordedHash echoes the campaign's expected hash in replay mode.
	RecordedHash string `json:"recorded_hash,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "resload: %v\n", err)
		os.Exit(1)
	}
}

// cell is one template of the request mix.
type cell struct {
	name string
	req  api.SolveRequest
	// rhs, when non-empty, posts the cell to /v1/solve/batch with these
	// per-RHS seeds; the cell's hash is the per-RHS hashes joined with "+".
	rhs []api.BatchRHS
	// wantHash is the recorded residual hash in replay mode ("" = none).
	wantHash string
}

// outcome is one request's result.
type outcome struct {
	cell   int
	status int
	// code is the machine-readable error-envelope code of a non-200
	// answer ("" when the body carried no envelope).
	code      string
	hash      string
	cacheHit  bool
	solveErr  bool
	transport bool
	// digestBad marks a response whose stamped X-Resilient-Digest did not
	// match the received bytes: corrupt bytes reached this client.
	digestBad bool
	// events counts the SSE frames a streamed solve delivered.
	events  int64
	latency time.Duration
}

// postOpts selects per-request wire behavior for one pass of the run.
type postOpts struct {
	// stream issues the solve with "Accept: text/event-stream" through the
	// typed streaming client (single solves only; batches stay buffered).
	stream bool
	// hedge, when non-empty, is sent as the X-Resilient-Hedge header —
	// api.HedgeOff opts the request out of router hedging (the unhedged
	// baseline pass).
	hedge string
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("resload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8723", "base URL of the resilientd service")
		n         = fs.Int("n", 48, "total requests to issue")
		c         = fs.Int("c", 8, "concurrent client workers")
		matrices  = fs.String("matrices", "poisson2d:225,tridiag:400", "comma-separated gen:n matrix specs")
		solvers   = fs.String("solvers", "cg,pcg,bicgstab", "comma-separated solvers")
		schemes   = fs.String("schemes", "abft-correction,unprotected", "comma-separated protection schemes")
		alpha     = fs.Float64("alpha", 0, "expected silent errors per iteration (protected cells only)")
		seed      = fs.Int64("seed", 7, "request seed (shared by all cells)")
		batchK    = fs.Int("batch", 1, "right-hand sides per request: >1 posts each cell to /v1/solve/batch with this many per-RHS seeds and cross-checks every RHS against a single solve")
		timeoutMS = fs.Int("timeout-ms", 0, "per-request deadline sent to the server (0 = server default)")
		jsonOut   = fs.Bool("json", false, "emit the JSON record on stdout instead of the text summary")
		outPath   = fs.String("out", "", "also write the JSON record to this file")
		check     = fs.Bool("check", false, "exit nonzero unless every request succeeded, every cell hashed identically, and every enabled cross-check passed")
		logFormat = fs.String("log-format", "text", "log line format: text or json")
		quiet     = fs.Bool("q", false, "suppress progress output")
		isRouter  = fs.Bool("router", false, "target is a resrouter: require and report its /routerz")
		chaosMode = fs.Bool("chaos", false, "the target router runs a fault-injection plan (-chaos-plan): require its /routerz chaos section, and -check additionally requires every injected bit flip to be detected and zero corrupt responses at this client")
		shardsCSV = fs.String("shards", "", "comma-separated direct shard base URLs: re-issue each cell directly and cross-check residual hashes against the routed run")
		streamOn  = fs.Bool("stream", false, "issue every solve as a streamed (SSE) request and cross-check each terminal hash against a buffered solve")
		hedgeOn   = fs.Bool("hedge", false, "A/B the router's hedged reads: a discarded warmup, an unhedged pass, then a hedged pass over the same mix, with per-pass latency summaries (requires -router)")
		recordTo  = fs.String("record", "", "write the request mix and observed hashes as a replayable campaign file")
		replayOf  = fs.String("replay", "", "drive the mix from a recorded campaign file instead of the flag axes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosMode && !*isRouter {
		return fmt.Errorf("-chaos requires -router (the chaos counters live in the router's /routerz)")
	}
	if *hedgeOn && !*isRouter {
		return fmt.Errorf("-hedge requires -router (hedging is a router behavior)")
	}
	if *hedgeOn && *streamOn {
		return fmt.Errorf("-hedge and -stream are mutually exclusive (streams pass through unhedged by design)")
	}
	if *streamOn && *batchK > 1 {
		return fmt.Errorf("-stream drives /v1/solve only; it cannot be combined with -batch > 1")
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var mix []cell
	var replay *ReplayCheck
	if *replayOf != "" {
		camp, err := loadCampaign(*replayOf)
		if err != nil {
			return err
		}
		replay = &ReplayCheck{Source: *replayOf}
		for _, cc := range camp.Cells {
			mix = append(mix, cell{name: cc.Name, req: cc.Request, rhs: cc.RHS, wantHash: cc.ResidualHash})
			if cc.ResidualHash != "" {
				replay.RecordedCells++
			}
		}
		// The campaign reproduces its run shape unless overridden.
		if !explicit["n"] && camp.Requests > 0 {
			*n = camp.Requests
		}
		if !explicit["c"] && camp.Concurrency > 0 {
			*c = camp.Concurrency
		}
	} else {
		var err error
		mix, err = buildMix(*matrices, *solvers, *schemes, *alpha, *seed, *batchK, *timeoutMS)
		if err != nil {
			return err
		}
	}
	if *n < 1 || *c < 1 {
		return fmt.Errorf("need -n ≥ 1 and -c ≥ 1")
	}
	logger := obs.NewLogger(stderr, *logFormat, *quiet)
	logger.Info("firing", "requests", *n, "cells", len(mix), "workers", *c, "target", *addr)

	var outcomes []outcome
	var wall time.Duration
	var hedgeChk *HedgeCheck
	if *hedgeOn {
		// Warmup (discarded): one solve per cell, unhedged, so neither
		// measured pass pays the cache-cold compute cost and the shards'
		// latency windows start filling before anything is timed.
		fire(*addr, mix, len(mix), min(*c, len(mix)), *timeoutMS, postOpts{hedge: api.HedgeOff})
		outA, wallA := fire(*addr, mix, *n, *c, *timeoutMS, postOpts{hedge: api.HedgeOff})
		outB, wallB := fire(*addr, mix, *n, *c, *timeoutMS, postOpts{})
		hedgeChk = &HedgeCheck{
			Unhedged: summarize(latenciesOf(outA)),
			Hedged:   summarize(latenciesOf(outB)),
		}
		// Both passes aggregate into one record: the per-cell determinism
		// gate then spans hedged and unhedged serving of the same cells.
		outcomes = append(outA, outB...)
		wall = wallA + wallB
	} else {
		outcomes, wall = fire(*addr, mix, *n, *c, *timeoutMS, postOpts{stream: *streamOn})
	}
	rec := aggregate(*addr, *c, mix, outcomes, wall)
	rec.Hedge = hedgeChk
	rec.Replay = replay
	if replay != nil {
		for _, cl := range rec.Mix {
			// A replayed cell fails only when it answered with a single,
			// different hash; nondeterminism is already Deterministic=false.
			if cl.RecordedHash != "" && cl.ResidualHash != "" && cl.ResidualHash != cl.RecordedHash {
				replay.Mismatches++
			}
		}
	}
	if *streamOn {
		rec.Stream = streamCheck(*addr, mix, rec.Mix, outcomes, *timeoutMS)
	}
	if *shardsCSV != "" {
		rec.Direct = directCheck(splitList(*shardsCSV), mix, rec.Mix, *timeoutMS)
	}
	for i := range mix {
		if len(mix[i].rhs) > 0 {
			rec.Batch = batchCheck(*addr, mix, rec.Mix, *timeoutMS)
			break
		}
	}
	if *isRouter {
		rs, err := fetchRouterz(*addr)
		if err != nil {
			if *check {
				return fmt.Errorf("check failed: -router target has no /routerz: %w", err)
			}
			logger.Warn("/routerz unreachable", "error", err.Error())
		}
		rec.Router = rs
	}
	if *recordTo != "" {
		if err := writeCampaign(*recordTo, *n, *c, rec.Mix, mix); err != nil {
			return err
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return err
		}
	} else if err := writeSummary(stdout, rec); err != nil {
		return err
	}

	if *check {
		switch {
		case rec.DigestMismatches > 0:
			return fmt.Errorf("check failed: %d corrupt responses reached the client (content digest mismatch)", rec.DigestMismatches)
		case rec.OK != rec.Requests:
			return fmt.Errorf("check failed: %d of %d requests did not succeed (rejected=%d expired=%d transport=%d solve=%d other=%d)",
				rec.Requests-rec.OK, rec.Requests, rec.Rejected, rec.Expired, rec.TransportErrors, rec.SolveErrors, rec.OtherErrors)
		case !rec.Deterministic:
			return fmt.Errorf("check failed: repeated identical requests returned differing residual hashes")
		case rec.Throughput <= 0:
			return fmt.Errorf("check failed: zero throughput")
		case rec.Replay != nil && rec.Replay.Mismatches > 0:
			return fmt.Errorf("check failed: %d of %d replayed cells did not reproduce their recorded residual hash",
				rec.Replay.Mismatches, rec.Replay.RecordedCells)
		case rec.Direct != nil && (rec.Direct.Mismatches > 0 || rec.Direct.Errors > 0):
			return fmt.Errorf("check failed: direct-vs-routed cross-check: %d mismatches, %d errors over %d checks",
				rec.Direct.Mismatches, rec.Direct.Errors, rec.Direct.Checks)
		case rec.Batch != nil && (rec.Batch.Mismatches > 0 || rec.Batch.Errors > 0):
			return fmt.Errorf("check failed: batched-vs-single cross-check: %d mismatches, %d errors over %d checks",
				rec.Batch.Mismatches, rec.Batch.Errors, rec.Batch.Checks)
		case rec.Stream != nil && (rec.Stream.Checks == 0 || rec.Stream.Mismatches > 0 || rec.Stream.Errors > 0):
			return fmt.Errorf("check failed: streamed-vs-buffered cross-check: %d mismatches, %d errors over %d checks",
				rec.Stream.Mismatches, rec.Stream.Errors, rec.Stream.Checks)
		}
		if rec.Hedge != nil {
			switch {
			case rec.Hedge.Hedged.P99Ms >= rec.Hedge.Unhedged.P99Ms:
				return fmt.Errorf("check failed: hedging did not improve tail latency (hedged p99 %.2fms, unhedged p99 %.2fms)",
					rec.Hedge.Hedged.P99Ms, rec.Hedge.Unhedged.P99Ms)
			case rec.Router == nil || rec.Router.Hedge == nil:
				return fmt.Errorf("check failed: -hedge given but the router reports no hedge counters")
			case rec.Router.Hedge.Armed == 0:
				return fmt.Errorf("check failed: the router never armed a hedge (is it running -hedge?)")
			case rec.Router.Hedge.Wins == 0:
				return fmt.Errorf("check failed: the router armed %d hedges but none won a race — the comparison is vacuous",
					rec.Router.Hedge.Armed)
			}
		}
		// Router counters (failovers, unroutable) are cumulative over the
		// router's lifetime, not this run's, so they are reported but
		// never gated on — this run's own failures already surface above.
		// The chaos gates below are the exception: a chaos campaign runs
		// against a router started fresh for the experiment.
		if *chaosMode {
			switch {
			case rec.Router == nil || rec.Router.Chaos == nil:
				return fmt.Errorf("check failed: -chaos given but the target router reports no chaos section (is it running -chaos-plan?)")
			case rec.Router.Chaos.BitFlips > 0 && rec.Router.Integrity.CorruptResponses == 0:
				return fmt.Errorf("check failed: chaos injected %d bit flips but the router detected no corrupt responses — the digest check is vacuous",
					rec.Router.Chaos.BitFlips)
			}
		}
	}
	return nil
}

// loadCampaign reads and validates a recorded campaign file. A
// truncated or partially-written file — the torn-write shapes a crashed
// recorder or interrupted copy leaves behind — fails with a clean error
// naming the byte offset where decoding stopped, never a panic.
func loadCampaign(path string) (Campaign, error) {
	var camp Campaign
	raw, err := os.ReadFile(path)
	if err != nil {
		return camp, err
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		return camp, fmt.Errorf("campaign %s: file is empty (truncated or never written?)", path)
	}
	if err := json.Unmarshal(raw, &camp); err != nil {
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		switch {
		case errors.As(err, &syn):
			return camp, fmt.Errorf("campaign %s: malformed JSON at byte offset %d of %d (truncated or partially-written file?): %v",
				path, syn.Offset, len(raw), err)
		case errors.As(err, &typ):
			return camp, fmt.Errorf("campaign %s: unexpected %s at byte offset %d (field %q)",
				path, typ.Value, typ.Offset, typ.Field)
		default:
			return camp, fmt.Errorf("campaign %s: %w", path, err)
		}
	}
	if camp.Schema != Schema {
		return camp, fmt.Errorf("campaign %s: schema %d, this resload speaks %d", path, camp.Schema, Schema)
	}
	if len(camp.Cells) == 0 {
		return camp, fmt.Errorf("campaign %s: no cells", path)
	}
	for i := range camp.Cells {
		cc := &camp.Cells[i]
		cc.Request.WithDefaults()
		if len(cc.RHS) > 0 {
			breq := api.BatchSolveRequest{SolveRequest: cc.Request, RHS: cc.RHS}
			if err := breq.Validate(); err != nil {
				return camp, fmt.Errorf("campaign %s: cell %q: %w", path, cc.Name, err)
			}
			continue
		}
		if err := cc.Request.Validate(); err != nil {
			return camp, fmt.Errorf("campaign %s: cell %q: %w", path, cc.Name, err)
		}
	}
	return camp, nil
}

// writeCampaign records the run's mix as a replayable campaign: each
// cell's request template plus the hash it answered with (when the cell
// was deterministic — a cell that never got an OK, or disagreed with
// itself, records no hash).
func writeCampaign(path string, n, c int, cells []MixCell, mix []cell) error {
	camp := Campaign{Schema: Schema, Requests: n, Concurrency: c}
	for i, m := range mix {
		cc := CampaignCell{Name: m.name, Request: m.req, RHS: m.rhs}
		if cells[i].DistinctHashes == 1 {
			cc.ResidualHash = cells[i].ResidualHash
		}
		camp.Cells = append(camp.Cells, cc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(camp); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// directCheck re-issues one request per deterministic cell straight at
// the listed shard addresses (round-robin) and compares the direct
// residual hash with the routed one: the determinism gate across routing
// paths. Any shard can serve any cell — the solve is a pure function of
// the request — so shard choice only spreads the load.
func directCheck(shards []string, mix []cell, cells []MixCell, timeoutMS int) *DirectCheck {
	dc := &DirectCheck{Shards: shards}
	if len(shards) == 0 {
		return dc
	}
	clientTimeout := 2 * time.Minute
	if timeoutMS > 0 {
		clientTimeout = time.Duration(timeoutMS)*time.Millisecond + 30*time.Second
	}
	client := &http.Client{Timeout: clientTimeout}
	for i := range mix {
		if cells[i].OK == 0 || cells[i].DistinctHashes != 1 {
			continue
		}
		dc.Checks++
		out := post(client, shards[i%len(shards)], i, &mix[i], postOpts{})
		switch {
		case out.transport || out.status != http.StatusOK || out.solveErr:
			dc.Errors++
		case out.hash != cells[i].ResidualHash:
			dc.Mismatches++
		}
	}
	return dc
}

// batchCheck re-solves every right-hand side of each deterministic batched
// cell as a single /v1/solve and compares hashes per RHS: the gate that
// batched serving answers exactly what single serving would, bit for bit.
func batchCheck(addr string, mix []cell, cells []MixCell, timeoutMS int) *BatchCheck {
	bc := &BatchCheck{}
	clientTimeout := 2 * time.Minute
	if timeoutMS > 0 {
		clientTimeout = time.Duration(timeoutMS)*time.Millisecond + 30*time.Second
	}
	client := &http.Client{Timeout: clientTimeout}
	for i := range mix {
		m := &mix[i]
		if len(m.rhs) == 0 || cells[i].OK == 0 || cells[i].DistinctHashes != 1 {
			continue
		}
		parts := strings.Split(cells[i].ResidualHash, "+")
		if len(parts) != len(m.rhs) {
			bc.Errors++
			continue
		}
		for j, rh := range m.rhs {
			bc.Checks++
			single := cell{req: m.req}
			single.req.Seed = rh.Seed
			single.req.RHSSeed = rh.RHSSeed
			out := post(client, addr, i, &single, postOpts{})
			switch {
			case out.transport || out.status != http.StatusOK || out.solveErr:
				bc.Errors++
			case out.hash != parts[j]:
				bc.Mismatches++
			}
		}
	}
	return bc
}

// fetchRouterz snapshots the router's shard map after the run through
// the typed client.
func fetchRouterz(addr string) (*RouterSummary, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rz, err := api.NewClient(addr).Routerz(ctx)
	if err != nil {
		return nil, err
	}
	return &RouterSummary{
		Shards:        len(rz.Shards),
		HealthyShards: rz.HealthyShards,
		Routed:        rz.Routed,
		Failovers:     rz.Failovers,
		Unroutable:    rz.Unroutable,
		DistinctKeys:  rz.Keys.Distinct,
		Integrity:     rz.Integrity,
		Chaos:         rz.Chaos,
		Hedge:         &rz.Hedge,
	}, nil
}

// buildMix crosses matrices × solvers × schemes, dropping combinations
// the harness rejects (e.g. BiCGstab × online-detection, fault-injected
// unprotected), so the mix is always runnable. batch > 1 makes every cell
// a batched request of that many consecutively-seeded right-hand sides.
func buildMix(matrices, solvers, schemes string, alpha float64, seed int64, batch, timeoutMS int) ([]cell, error) {
	var specs []harness.MatrixSpec
	for _, tok := range strings.Split(matrices, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		gen, nStr, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("matrix %q: want gen:n", tok)
		}
		dim, err := strconv.Atoi(nStr)
		if err != nil || dim < 1 {
			return nil, fmt.Errorf("matrix %q: bad dimension", tok)
		}
		spec, err := harness.NewMatrixSpec(gen, dim, 0)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	var mix []cell
	for _, spec := range specs {
		for _, sv := range splitList(solvers) {
			for _, sch := range splitList(schemes) {
				spec := spec
				req := api.SolveRequest{
					Matrix: &spec, Solver: sv, Scheme: sch, Seed: seed,
					TimeoutMillis: timeoutMS,
				}
				if sch != "unprotected" {
					req.Alpha = alpha
				}
				req.WithDefaults()
				name := sv + "/" + sch + "/" + spec.String()
				if err := req.Validate(); err != nil {
					continue // unsupported axis combination
				}
				cl := cell{name: name, req: req}
				if batch > 1 {
					cl.name += fmt.Sprintf("/k%d", batch)
					for i := 0; i < batch; i++ {
						cl.rhs = append(cl.rhs, api.BatchRHS{Seed: seed + int64(i)})
					}
				}
				mix = append(mix, cl)
			}
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty request mix (every combination invalid?)")
	}
	return mix, nil
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// fire issues n requests round-robin over the mix from c workers and
// returns one outcome per request plus the measured wall time. The
// client carries a hard timeout above any server-side deadline, so a
// wedged server surfaces as transport errors instead of hanging the run
// (and the CI gate) forever.
func fire(addr string, mix []cell, n, c, timeoutMS int, opts postOpts) ([]outcome, time.Duration) {
	clientTimeout := 2 * time.Minute
	if timeoutMS > 0 {
		clientTimeout = time.Duration(timeoutMS)*time.Millisecond + 30*time.Second
	}
	outcomes := make([]outcome, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: clientTimeout}
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				outcomes[j] = post(client, addr, j%len(mix), &mix[j%len(mix)], opts)
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return outcomes, time.Since(start)
}

// post issues one cell's request — /v1/solve, or /v1/solve/batch when the
// cell carries per-RHS seeds. A batched outcome's hash is the per-RHS
// hashes joined with "+" in RHS order, so the per-cell determinism and
// replay machinery gate every right-hand side at once.
func post(client *http.Client, addr string, cellIdx int, cl *cell, opts postOpts) outcome {
	if opts.stream && len(cl.rhs) == 0 {
		return postStream(client, addr, cellIdx, cl)
	}
	out := outcome{cell: cellIdx}
	path := "/v1/solve"
	var payload any = &cl.req
	if len(cl.rhs) > 0 {
		path = "/v1/solve/batch"
		payload = &api.BatchSolveRequest{SolveRequest: cl.req, RHS: cl.rhs}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		out.transport = true
		return out
	}
	hreq, err := http.NewRequest(http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		out.transport = true
		return out
	}
	hreq.Header.Set("Content-Type", "application/json")
	if opts.hedge != "" {
		hreq.Header.Set(api.HedgeHeader, opts.hedge)
	}
	start := time.Now()
	resp, err := client.Do(hreq)
	out.latency = time.Since(start)
	if err != nil {
		out.transport = true
		return out
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		// Refusals carry the unified envelope: the code tells saturation
		// from expiry from draining regardless of which tier answered.
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var e api.Error
		if json.Unmarshal(raw, &e) == nil {
			out.code = e.Code
		}
		return out
	}
	// Read the raw bytes first and verify the stamped content digest over
	// exactly what arrived: the client-side end of the integrity pipeline.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	out.latency = time.Since(start)
	if err != nil {
		out.transport = true
		return out
	}
	if !api.VerifyDigest(resp.Header.Get(api.DigestHeader), raw) {
		out.digestBad = true
		return out
	}
	if len(cl.rhs) > 0 {
		var br api.BatchSolveResponse
		if err := json.Unmarshal(raw, &br); err != nil || len(br.Results) != len(cl.rhs) {
			out.transport = true
			return out
		}
		parts := make([]string, len(br.Results))
		for i := range br.Results {
			parts[i] = br.Results[i].Result.ResidualHash
			if br.Results[i].SolveError != "" {
				out.solveErr = true
			}
		}
		out.hash = strings.Join(parts, "+")
		out.cacheHit = br.CacheHit
		return out
	}
	var sr api.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		out.transport = true
		return out
	}
	out.hash = sr.Result.ResidualHash
	out.cacheHit = sr.CacheHit
	out.solveErr = sr.SolveError != ""
	return out
}

// postStream issues one cell as a streamed solve through the typed
// client: every frame is digest-verified as it arrives, the terminal
// frame is re-verified against the stream trailer, and the decoded
// result lands in the same outcome shape a buffered post produces.
func postStream(client *http.Client, addr string, cellIdx int, cl *cell) outcome {
	out := outcome{cell: cellIdx}
	ac := api.NewClient(addr, api.WithHTTPClient(client))
	start := time.Now()
	resp, err := ac.SolveStream(context.Background(), &cl.req, func(ev *api.SolveEvent) error {
		out.events++
		return nil
	})
	out.latency = time.Since(start)
	if err != nil {
		var ae *api.Error
		if errors.As(err, &ae) {
			// A typed refusal (plain envelope before the stream, or a
			// terminal error frame): classify by its code like any other.
			out.code = ae.Code
			out.status = http.StatusServiceUnavailable
			return out
		}
		out.transport = true
		return out
	}
	out.status = http.StatusOK
	out.hash = resp.Result.ResidualHash
	out.cacheHit = resp.CacheHit
	out.solveErr = resp.SolveError != ""
	return out
}

// streamCheck re-issues one buffered request per deterministic cell and
// compares its hash against the streamed terminal hash: the gate that a
// streamed solve answers exactly what a buffered one would, bit for
// bit. Requests and Events aggregate the streamed pass itself.
func streamCheck(addr string, mix []cell, cells []MixCell, outcomes []outcome, timeoutMS int) *StreamCheck {
	sc := &StreamCheck{}
	for _, o := range outcomes {
		sc.Requests++
		sc.Events += o.events
	}
	clientTimeout := 2 * time.Minute
	if timeoutMS > 0 {
		clientTimeout = time.Duration(timeoutMS)*time.Millisecond + 30*time.Second
	}
	client := &http.Client{Timeout: clientTimeout}
	for i := range mix {
		if cells[i].OK == 0 || cells[i].DistinctHashes != 1 {
			continue
		}
		sc.Checks++
		out := post(client, addr, i, &mix[i], postOpts{})
		switch {
		case out.transport || out.status != http.StatusOK || out.solveErr:
			sc.Errors++
		case out.hash != cells[i].ResidualHash:
			sc.Mismatches++
		}
	}
	return sc
}

// latenciesOf extracts one pass's round-trip times in milliseconds.
func latenciesOf(outcomes []outcome) []float64 {
	ms := make([]float64, 0, len(outcomes))
	for _, o := range outcomes {
		ms = append(ms, float64(o.latency)/1e6)
	}
	return ms
}

func aggregate(addr string, c int, mix []cell, outcomes []outcome, wall time.Duration) Record {
	rec := Record{
		Schema: Schema, Addr: addr,
		Requests: len(outcomes), Concurrency: c,
		Deterministic: true,
	}
	latencies := make([]float64, 0, len(outcomes))
	hashes := make([]map[string]int, len(mix))
	cells := make([]MixCell, len(mix))
	for i, m := range mix {
		cells[i].Name = m.name
		cells[i].RecordedHash = m.wantHash
		hashes[i] = make(map[string]int)
	}
	for _, o := range outcomes {
		cells[o.cell].Requests++
		latencies = append(latencies, float64(o.latency)/1e6)
		if o.status != http.StatusOK && !o.transport && o.code != "" {
			if rec.ErrorCodes == nil {
				rec.ErrorCodes = make(map[string]int)
			}
			rec.ErrorCodes[o.code]++
		}
		// Classification prefers the envelope code over the HTTP status:
		// a router relaying backpressure and a shard refusing directly
		// stamp the same code even where statuses could blur.
		switch {
		case o.transport:
			rec.TransportErrors++
		case o.digestBad:
			rec.DigestMismatches++
		case o.code == api.CodeSaturated || (o.code == "" && o.status == http.StatusTooManyRequests):
			rec.Rejected++
		case o.code == api.CodeExpired || (o.code == "" && o.status == http.StatusGatewayTimeout):
			rec.Expired++
		case o.status != http.StatusOK:
			rec.OtherErrors++
		case o.solveErr:
			rec.SolveErrors++
		default:
			rec.OK++
			cells[o.cell].OK++
			hashes[o.cell][o.hash]++
			if o.cacheHit {
				rec.CacheHits++
			}
		}
	}
	for i := range cells {
		cells[i].DistinctHashes = len(hashes[i])
		if len(hashes[i]) == 1 {
			for h := range hashes[i] {
				cells[i].ResidualHash = h
			}
		}
		if len(hashes[i]) > 1 {
			rec.Deterministic = false
		}
	}
	rec.Mix = cells
	rec.WallSeconds = wall.Seconds()
	if rec.WallSeconds > 0 {
		rec.Throughput = float64(rec.OK) / rec.WallSeconds
	}
	rec.Latency = summarize(latencies)
	return rec
}

// summarize is the shared estimator from internal/api (nearest-rank
// percentiles; see api.NearestRank for the rank-vs-rounding rationale).
func summarize(ms []float64) api.LatencySummary {
	return api.SummarizeLatencies(ms)
}

func writeSummary(w io.Writer, rec Record) error {
	if _, err := fmt.Fprintf(w,
		"requests=%d ok=%d rejected=%d expired=%d errors=%d cache_hits=%d\nthroughput=%.1f req/s  latency p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms max=%.2fms\n",
		rec.Requests, rec.OK, rec.Rejected, rec.Expired,
		rec.SolveErrors+rec.TransportErrors+rec.OtherErrors, rec.CacheHits,
		rec.Throughput, rec.Latency.P50Ms, rec.Latency.P90Ms, rec.Latency.P99Ms, rec.Latency.P999Ms, rec.Latency.MaxMs); err != nil {
		return err
	}
	if len(rec.ErrorCodes) > 0 {
		codes := make([]string, 0, len(rec.ErrorCodes))
		for c := range rec.ErrorCodes {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		parts := make([]string, len(codes))
		for i, c := range codes {
			parts[i] = fmt.Sprintf("%s=%d", c, rec.ErrorCodes[c])
		}
		if _, err := fmt.Fprintf(w, "error codes: %s\n", strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	for _, cell := range rec.Mix {
		mark := "ok"
		if cell.DistinctHashes > 1 {
			mark = "NONDETERMINISTIC"
		}
		if _, err := fmt.Fprintf(w, "%-45s n=%-3d ok=%-3d hashes=%d %s %s\n",
			cell.Name, cell.Requests, cell.OK, cell.DistinctHashes, cell.ResidualHash, mark); err != nil {
			return err
		}
	}
	if rec.Replay != nil {
		if _, err := fmt.Fprintf(w, "replay source=%s recorded_cells=%d mismatches=%d\n",
			rec.Replay.Source, rec.Replay.RecordedCells, rec.Replay.Mismatches); err != nil {
			return err
		}
	}
	if rec.Direct != nil {
		if _, err := fmt.Fprintf(w, "direct cross-check shards=%d checks=%d mismatches=%d errors=%d\n",
			len(rec.Direct.Shards), rec.Direct.Checks, rec.Direct.Mismatches, rec.Direct.Errors); err != nil {
			return err
		}
	}
	if rec.Batch != nil {
		if _, err := fmt.Fprintf(w, "batch cross-check checks=%d mismatches=%d errors=%d\n",
			rec.Batch.Checks, rec.Batch.Mismatches, rec.Batch.Errors); err != nil {
			return err
		}
	}
	if rec.Stream != nil {
		if _, err := fmt.Fprintf(w, "stream requests=%d events=%d checks=%d mismatches=%d errors=%d\n",
			rec.Stream.Requests, rec.Stream.Events, rec.Stream.Checks, rec.Stream.Mismatches, rec.Stream.Errors); err != nil {
			return err
		}
	}
	if rec.Hedge != nil {
		if _, err := fmt.Fprintf(w, "hedge A/B unhedged p50=%.2fms p99=%.2fms p99.9=%.2fms | hedged p50=%.2fms p99=%.2fms p99.9=%.2fms\n",
			rec.Hedge.Unhedged.P50Ms, rec.Hedge.Unhedged.P99Ms, rec.Hedge.Unhedged.P999Ms,
			rec.Hedge.Hedged.P50Ms, rec.Hedge.Hedged.P99Ms, rec.Hedge.Hedged.P999Ms); err != nil {
			return err
		}
	}
	if rec.DigestMismatches > 0 {
		if _, err := fmt.Fprintf(w, "DIGEST MISMATCHES: %d corrupt responses reached this client\n", rec.DigestMismatches); err != nil {
			return err
		}
	}
	if rec.Router != nil {
		if _, err := fmt.Fprintf(w, "router shards=%d healthy=%d routed=%d failovers=%d unroutable=%d distinct_keys=%d\n",
			rec.Router.Shards, rec.Router.HealthyShards, rec.Router.Routed,
			rec.Router.Failovers, rec.Router.Unroutable, rec.Router.DistinctKeys); err != nil {
			return err
		}
		in := rec.Router.Integrity
		if _, err := fmt.Fprintf(w, "integrity digest_verified=%d corrupt_responses=%d retries_spent=%d budget_exhausted=%d\n",
			in.DigestVerified, in.CorruptResponses, in.RetriesSpent, in.BudgetExhausted); err != nil {
			return err
		}
		if hs := rec.Router.Hedge; hs != nil && hs.Enabled {
			if _, err := fmt.Fprintf(w, "router hedge armed=%d wins=%d primary_wins=%d losers_canceled=%d streamed_passthrough=%d\n",
				hs.Armed, hs.Wins, hs.PrimaryWins, hs.LosersCanceled, hs.StreamedPassthrough); err != nil {
				return err
			}
		}
		if ch := rec.Router.Chaos; ch != nil {
			if _, err := fmt.Fprintf(w, "chaos seed=%d requests=%d resets=%d storms_503=%d kills=%d truncations=%d bit_flips=%d latency_spikes=%d trace=%s\n",
				ch.Seed, ch.Requests, ch.Resets, ch.Storms503, ch.Kills, ch.Truncations, ch.BitFlips, ch.LatencySpikes, ch.TraceHash); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "deterministic=%v\n", rec.Deterministic)
	return err
}
