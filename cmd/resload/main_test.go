package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

func loadTarget(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{Workers: 1, Concurrency: 2, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return ts.URL
}

func TestRunAgainstLiveServer(t *testing.T) {
	url := loadTarget(t)
	var stdout bytes.Buffer
	args := []string{
		"-addr", url, "-n", "18", "-c", "4",
		"-matrices", "poisson2d:100,tridiag:120",
		"-solvers", "cg,pcg,bicgstab",
		"-schemes", "abft-correction,unprotected",
		"-json", "-check", "-q",
	}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatalf("resload: %v", err)
	}
	var rec Record
	if err := json.Unmarshal(stdout.Bytes(), &rec); err != nil {
		t.Fatalf("decoding record: %v\n%s", err, stdout.String())
	}
	if rec.Schema != Schema {
		t.Errorf("schema %d, want %d", rec.Schema, Schema)
	}
	if rec.OK != 18 || rec.Requests != 18 {
		t.Errorf("ok=%d requests=%d, want 18/18 (record: %+v)", rec.OK, rec.Requests, rec)
	}
	if !rec.Deterministic {
		t.Error("mix reported nondeterministic hashes")
	}
	if rec.Throughput <= 0 {
		t.Errorf("throughput %g, want > 0", rec.Throughput)
	}
	if rec.Latency.P99Ms < rec.Latency.P50Ms {
		t.Errorf("latency summary inconsistent: %+v", rec.Latency)
	}
	// 12 cells, 18 requests round-robin: the first six cells fire twice.
	// Every cell that fired at least once must have exactly one hash.
	if len(rec.Mix) != 12 {
		t.Fatalf("mix has %d cells, want 12", len(rec.Mix))
	}
	for _, cell := range rec.Mix {
		if cell.OK > 0 && cell.DistinctHashes != 1 {
			t.Errorf("cell %s: %d distinct hashes", cell.Name, cell.DistinctHashes)
		}
	}
}

func TestRunTextSummary(t *testing.T) {
	url := loadTarget(t)
	var stdout bytes.Buffer
	args := []string{
		"-addr", url, "-n", "4", "-c", "2",
		"-matrices", "poisson2d:64", "-solvers", "cg", "-schemes", "abft-correction",
		"-q",
	}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"requests=4", "deterministic=true", "cg/abft-correction/poisson2d:64"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunCheckFailsOnDeadServer(t *testing.T) {
	args := []string{"-addr", "http://127.0.0.1:1", "-n", "2", "-c", "1", "-check", "-q"}
	if err := run(args, io.Discard, io.Discard); err == nil {
		t.Fatal("expected -check to fail against a dead server")
	}
}

func TestBuildMixSkipsInvalidCombos(t *testing.T) {
	mix, err := buildMix("poisson2d:64", "cg,bicgstab", "online-detection,abft-correction", 0, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// bicgstab × online-detection is unsupported and must be dropped.
	if len(mix) != 3 {
		names := make([]string, len(mix))
		for i, m := range mix {
			names[i] = m.name
		}
		t.Fatalf("mix has %d cells %v, want 3", len(mix), names)
	}
	for _, m := range mix {
		if strings.Contains(m.name, "bicgstab/online-detection") {
			t.Errorf("invalid cell survived: %s", m.name)
		}
	}
}

func TestBuildMixRejectsBadMatrices(t *testing.T) {
	for _, bad := range []string{"poisson2d", "poisson2d:x", "warp:64", ""} {
		if _, err := buildMix(bad, "cg", "unprotected", 0, 1, 1, 0); err == nil {
			t.Errorf("buildMix(%q) accepted", bad)
		}
	}
}

// TestSummarizePercentiles pins the nearest-rank estimator on known
// inputs: the q-quantile of n sorted samples is the ⌈q·n⌉-th (1-based).
// The rounding form int(q·n+0.5)−1 it replaced read one sample too low
// whenever frac(q·n) ∈ (0, 0.5) — the n=26 row catches exactly that.
func TestSummarizePercentiles(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1)
		}
		return out
	}
	cases := []struct {
		name               string
		in                 []float64
		p50, p90, p99, max float64
	}{
		{"empty", nil, 0, 0, 0, 0},
		{"single", seq(1), 1, 1, 1, 1},
		{"n=4", seq(4), 2, 4, 4, 4},
		{"n=26", seq(26), 13, 24, 26, 26}, // p90 rank ⌈23.4⌉=24; rounding gave 23
		{"n=100", seq(100), 50, 90, 99, 100},
		{"n=200", seq(200), 100, 180, 198, 200},
	}
	for _, tc := range cases {
		in := append([]float64(nil), tc.in...)
		got := summarize(in)
		if got.P50Ms != tc.p50 || got.P90Ms != tc.p90 || got.P99Ms != tc.p99 || got.MaxMs != tc.max {
			t.Errorf("%s: got p50=%v p90=%v p99=%v max=%v, want %v/%v/%v/%v",
				tc.name, got.P50Ms, got.P90Ms, got.P99Ms, got.MaxMs, tc.p50, tc.p90, tc.p99, tc.max)
		}
	}
	// Percentiles must never exceed the maximum or fall below the minimum.
	s := summarize(seq(26))
	if s.P99Ms > s.MaxMs || s.P50Ms < 1 {
		t.Errorf("bounds violated: %+v", s)
	}
}

// TestRunBatchedMix drives the batched endpoint end to end: every cell is
// a 3-RHS batch, and the built-in cross-check re-solves each RHS alone and
// requires bit-identical hashes.
func TestRunBatchedMix(t *testing.T) {
	url := loadTarget(t)
	var stdout bytes.Buffer
	args := []string{
		"-addr", url, "-n", "8", "-c", "2",
		"-matrices", "poisson2d:100", "-solvers", "cg", "-schemes", "abft-correction,unprotected",
		"-batch", "3", "-json", "-check", "-q",
	}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatalf("resload -batch: %v", err)
	}
	var rec Record
	if err := json.Unmarshal(stdout.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.OK != 8 || !rec.Deterministic {
		t.Fatalf("ok=%d deterministic=%v, want 8/true", rec.OK, rec.Deterministic)
	}
	if rec.Batch == nil || rec.Batch.Checks != 6 || rec.Batch.Mismatches != 0 || rec.Batch.Errors != 0 {
		t.Fatalf("batch cross-check %+v, want 6 clean checks (2 cells × 3 RHS)", rec.Batch)
	}
	for _, cl := range rec.Mix {
		if !strings.Contains(cl.Name, "/k3") {
			t.Errorf("cell %s: missing batch suffix", cl.Name)
		}
		if cl.OK > 0 && strings.Count(cl.ResidualHash, "+") != 2 {
			t.Errorf("cell %s: hash %q does not join 3 per-RHS hashes", cl.Name, cl.ResidualHash)
		}
	}
}

var updateGolden = flag.Bool("update", false, "re-record the golden replay campaign")

// routerTarget boots three real solve-service shards behind an
// in-process router and returns the router URL, the shard URLs and a
// kill function for the first shard.
func routerTarget(t *testing.T) (string, []string, func()) {
	t.Helper()
	names := []string{"s0", "s1", "s2"}
	shardURLs := make([]string, len(names))
	shards := make([]router.Shard, len(names))
	var killFirst func()
	for i, name := range names {
		s := server.New(server.Config{Workers: 1, Concurrency: 2, QueueDepth: 64, ShardLabel: name})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Shutdown()
		})
		shardURLs[i] = ts.URL
		shards[i] = router.Shard{Name: name, Addr: ts.URL}
		if i == 0 {
			killFirst = func() {
				ts.CloseClientConnections()
				ts.Close()
			}
		}
	}
	rt, err := router.New(router.Config{ProbeInterval: time.Hour, FailThreshold: 3}, shards)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		rts.Close()
		rt.Shutdown()
	})
	return rts.URL, shardURLs, killFirst
}

// TestRunRouterMode drives the sharded determinism gate end to end:
// a routed campaign with a direct-shard cross-check, then a shard kill,
// then a replay of the recorded campaign whose every hash must still
// reproduce through the failover path.
func TestRunRouterMode(t *testing.T) {
	routerURL, shardURLs, killFirst := routerTarget(t)
	campaign := filepath.Join(t.TempDir(), "campaign.json")

	// Phase 1: all shards healthy. Record the campaign, cross-check
	// routed hashes against direct serving on every shard.
	var stdout bytes.Buffer
	args := []string{
		"-addr", routerURL, "-router",
		"-shards", strings.Join(shardURLs, ","),
		"-n", "24", "-c", "4",
		"-matrices", "poisson2d:100,poisson2d:144,tridiag:120,tridiag:160",
		"-solvers", "cg", "-schemes", "abft-correction,unprotected",
		"-record", campaign,
		"-json", "-check", "-q",
	}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatalf("phase 1: %v", err)
	}
	var rec1 Record
	if err := json.Unmarshal(stdout.Bytes(), &rec1); err != nil {
		t.Fatal(err)
	}
	if rec1.Router == nil || rec1.Router.Shards != 3 || rec1.Router.HealthyShards != 3 {
		t.Fatalf("phase 1 router summary %+v, want 3/3 shards", rec1.Router)
	}
	if rec1.Direct == nil || rec1.Direct.Checks == 0 || rec1.Direct.Mismatches != 0 || rec1.Direct.Errors != 0 {
		t.Fatalf("phase 1 direct check %+v, want clean checks > 0", rec1.Direct)
	}
	if rec1.Router.DistinctKeys != 4 {
		t.Errorf("router saw %d distinct keys, want 4", rec1.Router.DistinctKeys)
	}

	// Phase 2: kill a shard, replay the recorded campaign through the
	// router. Its keys fail over; every recorded hash must reproduce.
	killFirst()
	stdout.Reset()
	args = []string{
		"-addr", routerURL, "-router",
		"-shards", strings.Join(shardURLs[1:], ","),
		"-replay", campaign,
		"-json", "-check", "-q",
	}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatalf("phase 2 (post-kill replay): %v", err)
	}
	var rec2 Record
	if err := json.Unmarshal(stdout.Bytes(), &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2.Replay == nil || rec2.Replay.RecordedCells == 0 || rec2.Replay.Mismatches != 0 {
		t.Fatalf("phase 2 replay %+v, want recorded cells with 0 mismatches", rec2.Replay)
	}
	if rec2.Requests != 24 || rec2.OK != 24 {
		t.Errorf("phase 2 replay shape: ok=%d/%d, want the campaign's 24", rec2.OK, rec2.Requests)
	}
	if rec2.Direct == nil || rec2.Direct.Mismatches != 0 || rec2.Direct.Errors != 0 {
		t.Errorf("phase 2 direct check %+v, want clean", rec2.Direct)
	}
	// The recorded hashes equal phase 1's observed hashes by
	// construction, so zero replay mismatches IS the cross-failover
	// determinism gate; double-check one cell explicitly.
	for i, cl := range rec2.Mix {
		if cl.RecordedHash == "" || cl.ResidualHash != cl.RecordedHash {
			t.Errorf("cell %d (%s): replayed hash %q vs recorded %q", i, cl.Name, cl.ResidualHash, cl.RecordedHash)
		}
	}
}

// TestRecordReplayRoundTrip pins the campaign file semantics against a
// plain (router-less) service: a recorded mix replays to the same
// per-cell hash set and reuses the recorded run shape.
func TestRecordReplayRoundTrip(t *testing.T) {
	url := loadTarget(t)
	campaign := filepath.Join(t.TempDir(), "campaign.json")

	var stdout bytes.Buffer
	if err := run([]string{
		"-addr", url, "-n", "12", "-c", "3",
		"-matrices", "poisson2d:64,tridiag:80", "-solvers", "cg,bicgstab", "-schemes", "abft-correction",
		"-record", campaign, "-json", "-check", "-q",
	}, &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	var recorded Record
	if err := json.Unmarshal(stdout.Bytes(), &recorded); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(campaign)
	if err != nil {
		t.Fatal(err)
	}
	var camp Campaign
	if err := json.Unmarshal(raw, &camp); err != nil {
		t.Fatal(err)
	}
	if camp.Schema != Schema || camp.Requests != 12 || camp.Concurrency != 3 || len(camp.Cells) != 4 {
		t.Fatalf("campaign %+v: want schema %d, 12 requests, 3 workers, 4 cells", camp, Schema)
	}
	for _, cc := range camp.Cells {
		if cc.ResidualHash == "" {
			t.Errorf("cell %s recorded no hash", cc.Name)
		}
	}

	stdout.Reset()
	if err := run([]string{"-addr", url, "-replay", campaign, "-json", "-check", "-q"}, &stdout, io.Discard); err != nil {
		t.Fatalf("replay: %v", err)
	}
	var replayed Record
	if err := json.Unmarshal(stdout.Bytes(), &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.Requests != 12 || replayed.Replay == nil || replayed.Replay.RecordedCells != 4 || replayed.Replay.Mismatches != 0 {
		t.Fatalf("replay record %+v (replay %+v), want 12 requests, 4 recorded cells, 0 mismatches",
			replayed, replayed.Replay)
	}
	for i := range recorded.Mix {
		if recorded.Mix[i].ResidualHash != replayed.Mix[i].ResidualHash {
			t.Errorf("cell %s: replay hash %s != recorded run hash %s",
				recorded.Mix[i].Name, replayed.Mix[i].ResidualHash, recorded.Mix[i].ResidualHash)
		}
	}
}

// TestReplayGoldenFile replays the committed campaign: the per-cell
// residual hashes pinned in testdata must reproduce on a live service.
// Regenerate deliberately with: go test ./cmd/resload -run Golden -update
func TestReplayGoldenFile(t *testing.T) {
	golden := filepath.Join("testdata", "replay_golden.json")
	url := loadTarget(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{
			"-addr", url, "-n", "12", "-c", "2",
			"-matrices", "poisson2d:100,tridiag:120", "-solvers", "cg,pcg", "-schemes", "abft-correction,unprotected",
			"-record", golden, "-check", "-q",
		}, io.Discard, io.Discard); err != nil {
			t.Fatal(err)
		}
		// Fold one batched cell into the golden campaign so the replay gate
		// also pins the batch endpoint's per-RHS hashes.
		batched := filepath.Join(t.TempDir(), "batched.json")
		if err := run([]string{
			"-addr", url, "-n", "2", "-c", "1",
			"-matrices", "poisson2d:100", "-solvers", "cg", "-schemes", "abft-correction",
			"-batch", "3", "-record", batched, "-check", "-q",
		}, io.Discard, io.Discard); err != nil {
			t.Fatal(err)
		}
		base, err := loadCampaign(golden)
		if err != nil {
			t.Fatal(err)
		}
		extra, err := loadCampaign(batched)
		if err != nil {
			t.Fatal(err)
		}
		base.Cells = append(base.Cells, extra.Cells...)
		raw, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stdout bytes.Buffer
	if err := run([]string{"-addr", url, "-replay", golden, "-json", "-check", "-q"}, &stdout, io.Discard); err != nil {
		t.Fatalf("golden replay diverged (intentional? regenerate with -update): %v", err)
	}
	var rec Record
	if err := json.Unmarshal(stdout.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Replay.RecordedCells == 0 || rec.Replay.Mismatches != 0 {
		t.Errorf("golden replay %+v, want recorded cells with 0 mismatches", rec.Replay)
	}
}

func TestLoadCampaignRejectsBad(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"not json":    "{",
		"bad schema":  `{"schema":99,"cells":[{"name":"x","request":{"matrix":{"gen":"poisson2d","n":16}}}]}`,
		"no cells":    `{"schema":1,"cells":[]}`,
		"bad request": `{"schema":1,"cells":[{"name":"x","request":{"solver":"warp","matrix":{"gen":"poisson2d","n":16}}}]}`,
	}
	for name, body := range cases {
		if _, err := loadCampaign(write("bad.json", body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := loadCampaign(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestLoadCampaignNamesTruncationOffset is the crash-mid-write contract:
// replaying a truncated or partially-written record file must fail with
// a clean error naming the byte offset — never a panic, never a
// half-loaded campaign.
func TestLoadCampaignNamesTruncationOffset(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "replay_golden.json"))
	if err != nil {
		t.Skip("no golden campaign recorded yet")
	}
	dir := t.TempDir()
	write := func(name string, body []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	for _, frac := range []float64{0.25, 0.5, 0.9} {
		cut := int(frac * float64(len(golden)))
		p := write("truncated.json", golden[:cut])
		_, err := loadCampaign(p)
		if err == nil {
			t.Fatalf("%d%% truncation accepted", int(frac*100))
		}
		msg := err.Error()
		if !strings.Contains(msg, "byte offset") || !strings.Contains(msg, "truncated") {
			t.Errorf("%d%% truncation error %q: want the byte offset and a truncation hint", int(frac*100), msg)
		}
	}

	// A zero-length file (open() happened, write() never did) gets its own
	// diagnosis instead of a bare JSON EOF.
	if _, err := loadCampaign(write("empty.json", nil)); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty file error = %v, want an empty-file diagnosis", err)
	}

	// Type-level corruption (valid JSON, wrong shape) names the field and
	// offset rather than failing opaquely.
	bad := []byte(`{"schema":1,"cells":[{"name":"x","request":{"matrix":{"gen":"poisson2d","n":"sixteen"}}}]}`)
	if _, err := loadCampaign(write("badtype.json", bad)); err == nil || !strings.Contains(err.Error(), "byte offset") {
		t.Errorf("type corruption error = %v, want the byte offset named", err)
	}
}
