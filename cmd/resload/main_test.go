package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

func loadTarget(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{Workers: 1, Concurrency: 2, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return ts.URL
}

func TestRunAgainstLiveServer(t *testing.T) {
	url := loadTarget(t)
	var stdout bytes.Buffer
	args := []string{
		"-addr", url, "-n", "18", "-c", "4",
		"-matrices", "poisson2d:100,tridiag:120",
		"-solvers", "cg,pcg,bicgstab",
		"-schemes", "abft-correction,unprotected",
		"-json", "-check", "-q",
	}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatalf("resload: %v", err)
	}
	var rec Record
	if err := json.Unmarshal(stdout.Bytes(), &rec); err != nil {
		t.Fatalf("decoding record: %v\n%s", err, stdout.String())
	}
	if rec.Schema != Schema {
		t.Errorf("schema %d, want %d", rec.Schema, Schema)
	}
	if rec.OK != 18 || rec.Requests != 18 {
		t.Errorf("ok=%d requests=%d, want 18/18 (record: %+v)", rec.OK, rec.Requests, rec)
	}
	if !rec.Deterministic {
		t.Error("mix reported nondeterministic hashes")
	}
	if rec.Throughput <= 0 {
		t.Errorf("throughput %g, want > 0", rec.Throughput)
	}
	if rec.Latency.P99Ms < rec.Latency.P50Ms {
		t.Errorf("latency summary inconsistent: %+v", rec.Latency)
	}
	// 12 cells, 18 requests round-robin: the first six cells fire twice.
	// Every cell that fired at least once must have exactly one hash.
	if len(rec.Mix) != 12 {
		t.Fatalf("mix has %d cells, want 12", len(rec.Mix))
	}
	for _, cell := range rec.Mix {
		if cell.OK > 0 && cell.DistinctHashes != 1 {
			t.Errorf("cell %s: %d distinct hashes", cell.Name, cell.DistinctHashes)
		}
	}
}

func TestRunTextSummary(t *testing.T) {
	url := loadTarget(t)
	var stdout bytes.Buffer
	args := []string{
		"-addr", url, "-n", "4", "-c", "2",
		"-matrices", "poisson2d:64", "-solvers", "cg", "-schemes", "abft-correction",
		"-q",
	}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"requests=4", "deterministic=true", "cg/abft-correction/poisson2d:64"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunCheckFailsOnDeadServer(t *testing.T) {
	args := []string{"-addr", "http://127.0.0.1:1", "-n", "2", "-c", "1", "-check", "-q"}
	if err := run(args, io.Discard, io.Discard); err == nil {
		t.Fatal("expected -check to fail against a dead server")
	}
}

func TestBuildMixSkipsInvalidCombos(t *testing.T) {
	mix, err := buildMix("poisson2d:64", "cg,bicgstab", "online-detection,abft-correction", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// bicgstab × online-detection is unsupported and must be dropped.
	if len(mix) != 3 {
		names := make([]string, len(mix))
		for i, m := range mix {
			names[i] = m.name
		}
		t.Fatalf("mix has %d cells %v, want 3", len(mix), names)
	}
	for _, m := range mix {
		if strings.Contains(m.name, "bicgstab/online-detection") {
			t.Errorf("invalid cell survived: %s", m.name)
		}
	}
}

func TestBuildMixRejectsBadMatrices(t *testing.T) {
	for _, bad := range []string{"poisson2d", "poisson2d:x", "warp:64", ""} {
		if _, err := buildMix(bad, "cg", "unprotected", 0, 1, 0); err == nil {
			t.Errorf("buildMix(%q) accepted", bad)
		}
	}
}
