package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
)

// bootProxy starts run() against args and returns the proxy's base URL.
func bootProxy(t *testing.T, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-q"}, args...), io.Discard, started) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("proxy did not shut down")
		}
	})
	select {
	case addr := <-started:
		return "http://" + addr.String()
	case err := <-done:
		t.Fatalf("proxy exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("proxy never bound")
	}
	return ""
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), nil, io.Discard, nil); err == nil {
		t.Error("missing -target accepted")
	}
	if err := run(context.Background(), []string{"-target", "not a url"}, io.Discard, nil); err == nil {
		t.Error("malformed -target accepted")
	}
	if err := run(context.Background(), []string{"-target", "http://x", "-plan", "/nonexistent.json"}, io.Discard, nil); err == nil {
		t.Error("unreadable -plan accepted")
	}
}

// TestProxyPassThroughAndChaosz: with no plan, solve traffic flows
// through untouched (digest intact) and /chaosz reports the request in
// its counters with a zero-fault trace.
func TestProxyPassThroughAndChaosz(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		api.WriteJSON(w, http.StatusOK, map[string]any{"schema": api.SchemaVersion, "echo": len(body)})
	}))
	defer upstream.Close()

	base := bootProxy(t, "-target", upstream.URL)
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader([]byte(`{"n":16}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !api.VerifyDigest(resp.Header.Get(api.DigestHeader), body) {
		t.Error("pass-through mangled the digest-stamped body")
	}

	resp, err = http.Get(base + "/chaosz")
	if err != nil {
		t.Fatal(err)
	}
	var cz chaoszResponse
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(raw, &cz); err != nil {
		t.Fatalf("chaosz decode: %v (%s)", err, raw)
	}
	if !api.VerifyDigest(resp.Header.Get(api.DigestHeader), raw) {
		t.Error("/chaosz body fails its own digest")
	}
	if cz.Schema != api.SchemaVersion || cz.Target != upstream.URL {
		t.Errorf("chaosz header %+v", cz)
	}
	if cz.Chaos == nil || cz.Chaos.Requests != 1 || cz.Chaos.Passed != 1 {
		t.Errorf("chaos counters %+v, want 1 request passed clean", cz.Chaos)
	}
}

// TestProxyInjectsFromPlan: a reset-only plan makes solve requests fail
// at the transport (aborted connection, not a synthetic 502) while
// /chaosz itself stays reachable and counts the casualties.
func TestProxyInjectsFromPlan(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		api.WriteJSON(w, http.StatusOK, map[string]any{"ok": true})
	}))
	defer upstream.Close()

	plan := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(plan, []byte(`{"schema":1,"seed":7,"p_reset":1.0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := bootProxy(t, "-target", upstream.URL, "-plan", plan)

	failures := 0
	for i := 0; i < 4; i++ {
		resp, err := http.Post(base+"/v1/solve", "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"n":%d}`, 16+i))))
		if err != nil {
			failures++
			continue
		}
		resp.Body.Close()
		t.Errorf("request %d got status %d through a p_reset=1 plan", i, resp.StatusCode)
	}
	if failures != 4 {
		t.Errorf("%d transport failures, want all 4", failures)
	}

	resp, err := http.Get(base + "/chaosz")
	if err != nil {
		t.Fatal(err)
	}
	var cz chaoszResponse
	if err := json.NewDecoder(resp.Body).Decode(&cz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cz.Chaos == nil || cz.Chaos.Resets != 4 || cz.Chaos.Requests != 4 {
		t.Errorf("chaos counters %+v, want 4/4 resets", cz.Chaos)
	}
	if cz.Chaos.TraceHash == "" {
		t.Error("empty trace hash after injected faults")
	}
}
