// Command reschaos is the standalone fault-injection proxy: it sits in
// front of any resilientd shard or resrouter front end and subjects the
// solve traffic flowing through it to a seeded chaos plan — connection
// resets, mid-body truncation, single-bit flips, latency spikes and 5xx
// storms — while health probes and admin calls pass through untouched.
//
//	reschaos -addr 127.0.0.1:8999 -target http://127.0.0.1:8900 -plan chaos.json
//
// The same plan and the same request sequence inject the same faults
// (the decision PRNG is keyed on plan seed × request identity × attempt),
// so a campaign replayed through reschaos is a reproducible experiment.
// GET /chaosz reports the injection counters and the order-independent
// trace hash. An injected connection reset aborts the client's
// connection (http.ErrAbortHandler) instead of answering a synthetic
// 502, so callers observe a transport failure — exactly what the
// router's failover path expects to retry.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "reschaos: %v\n", err)
		os.Exit(1)
	}
}

// chaoszResponse is the body of GET /chaosz.
type chaoszResponse struct {
	Schema int             `json:"schema"`
	Target string          `json:"target"`
	Chaos  *api.ChaosStats `json:"chaos"`
}

// run starts the proxy and blocks until ctx is cancelled or the listener
// fails. When started is non-nil it receives the bound address.
func run(ctx context.Context, args []string, stderr io.Writer, started chan<- net.Addr) error {
	fs := flag.NewFlagSet("reschaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8999", "listen address")
		target    = fs.String("target", "", "upstream base URL (a resilientd shard or a resrouter)")
		planPath  = fs.String("plan", "", "seeded chaos plan (JSON); empty passes all traffic through")
		logFormat = fs.String("log-format", "text", "log line format: text or json")
		quiet     = fs.Bool("q", false, "log warnings and errors only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return errors.New("missing -target")
	}
	u, err := url.Parse(*target)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return fmt.Errorf("-target %q is not an http(s) base URL", *target)
	}
	var plan chaos.Plan
	if *planPath != "" {
		if plan, err = chaos.LoadPlan(*planPath); err != nil {
			return err
		}
	}
	inj := chaos.New(plan, nil)

	proxy := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(u)
			pr.Out.Host = u.Host
		},
		Transport: inj,
		ErrorHandler: func(w http.ResponseWriter, req *http.Request, err error) {
			// Surface injected (and real) transport failures as aborted
			// connections, not proxy-fabricated 502 bodies: the caller must
			// see the same failure shape a direct connection would show, or
			// a router in front of this proxy would relay the 502 instead
			// of retrying.
			panic(http.ErrAbortHandler)
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /chaosz", func(w http.ResponseWriter, req *http.Request) {
		api.WriteJSON(w, http.StatusOK, chaoszResponse{
			Schema: api.SchemaVersion,
			Target: *target,
			Chaos:  inj.Stats(),
		})
	})
	mux.Handle("/", proxy)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if started != nil {
		started <- ln.Addr()
	}
	logger := obs.NewLogger(stderr, *logFormat, *quiet)
	logger.Info("proxying", "addr", ln.Addr().String(), "target", *target, "plan", *planPath, "seed", plan.Seed)
	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return hs.Shutdown(sctx)
}
