package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the expected error; "" means success
		wantOut string // substring expected on stdout on success
	}{
		{
			name:    "fault-free small solve",
			args:    []string{"-gen", "poisson2d", "-n", "100", "-tol", "1e-8", "-seed", "3"},
			wantOut: "converged:         true",
		},
		{
			name:    "faulty solve with explicit intervals",
			args:    []string{"-gen", "poisson2d", "-n", "100", "-alpha", "0.0625", "-s", "2", "-seed", "4"},
			wantOut: "converged:         true",
		},
		{
			// n = 4096 > sparse.ParallelMinRows and > vec.BlockSize, so the
			// pooled kernel paths really execute.
			name:    "pooled solve matches the engine wiring",
			args:    []string{"-gen", "poisson2d", "-n", "4096", "-workers", "2", "-seed", "5"},
			wantOut: "converged:         true",
		},
		{
			name:    "suite generator",
			args:    []string{"-gen", "suite:341", "-n", "250", "-seed", "6"},
			wantOut: "converged:         true",
		},
		{
			name:    "unknown scheme",
			args:    []string{"-scheme", "nonesuch"},
			wantErr: `unknown scheme "nonesuch"`,
		},
		{
			name:    "unknown generator",
			args:    []string{"-gen", "nonesuch"},
			wantErr: `unknown generator "nonesuch"`,
		},
		{
			name:    "bad suite id",
			args:    []string{"-gen", "suite:9999"},
			wantErr: "unknown suite matrix 9999",
		},
		{
			name:    "bad flag",
			args:    []string{"-definitely-not-a-flag"},
			wantErr: "flag provided but not defined",
		},
		{
			name:    "missing matrix file",
			args:    []string{"-matrix", "/nonexistent/a.mtx"},
			wantErr: "no such file",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run(%v) error = %v, want containing %q", tc.args, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v) failed: %v\nstderr: %s", tc.args, err, stderr.String())
			}
			if !strings.Contains(stdout.String(), tc.wantOut) {
				t.Fatalf("run(%v) stdout missing %q:\n%s", tc.args, tc.wantOut, stdout.String())
			}
		})
	}
}

func TestParseScheme(t *testing.T) {
	for name, want := range map[string]struct{ ok bool }{
		"online": {true}, "abft-d": {true}, "ABFT-Correction": {true},
		"bogus": {false}, "unprotected": {false}, "": {false},
	} {
		_, err := parseScheme(name)
		if (err == nil) != want.ok {
			t.Errorf("parseScheme(%q) err = %v", name, err)
		}
	}
}
