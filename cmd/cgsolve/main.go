// Command cgsolve solves a sparse SPD linear system with one of the
// resilient CG schemes, optionally under silent-error injection, and
// reports the execution statistics.
//
// The matrix comes from a Matrix Market file (-matrix) or from a built-in
// generator (-gen poisson2d|poisson3d|laplacian|suite:<id>). The right-hand
// side is manufactured from a random solution, so the reported solution
// error is exact.
//
// Examples:
//
//	cgsolve -gen poisson2d -n 10000 -scheme abft-correction -alpha 0.0625
//	cgsolve -matrix A.mtx -scheme online-detection -alpha 0.01 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func main() {
	var (
		matrixPath = flag.String("matrix", "", "Matrix Market file with an SPD matrix")
		gen        = flag.String("gen", "poisson2d", "generator when -matrix is empty: poisson2d, poisson3d, laplacian, suite:<id>")
		n          = flag.Int("n", 10000, "target dimension for generated matrices")
		schemeName = flag.String("scheme", "abft-correction", "resilience scheme: online-detection, abft-detection, abft-correction")
		alpha      = flag.Float64("alpha", 0, "expected silent errors per iteration (0 = fault-free)")
		tol        = flag.Float64("tol", 1e-8, "relative residual tolerance")
		s          = flag.Int("s", 0, "checkpoint interval in chunks (0 = model-optimal)")
		d          = flag.Int("d", 0, "verification interval in iterations, online scheme only (0 = model-optimal)")
		seed       = flag.Int64("seed", 1, "RNG seed for the fault injector and the manufactured solution")
		verbose    = flag.Bool("v", false, "trace detections, corrections and rollbacks")
	)
	flag.Parse()

	a, err := loadMatrix(*matrixPath, *gen, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgsolve: %v\n", err)
		os.Exit(2)
	}
	scheme, err := parseScheme(*schemeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgsolve: %v\n", err)
		os.Exit(2)
	}

	b, xTrue := sim.RHS(a, *seed)
	cfg := core.Config{Scheme: scheme, S: *s, D: *d, Tol: *tol}
	if *alpha > 0 {
		cfg.Injector = fault.New(fault.Config{Alpha: *alpha, Seed: *seed})
	}
	if *verbose {
		cfg.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "trace: "+format+"\n", args...)
		}
	}

	x, st, err := core.Solve(a, b, cfg)
	fmt.Printf("matrix:            %d x %d, %d nonzeros (%.2e density)\n", a.Rows, a.Cols, a.NNZ(), a.Density())
	fmt.Printf("scheme:            %v (d=%d, s=%d)\n", st.Scheme, st.D, st.S)
	fmt.Printf("converged:         %v\n", st.Converged)
	fmt.Printf("useful iterations: %d (total executed %d)\n", st.UsefulIterations, st.TotalIterations)
	fmt.Printf("faults injected:   %d\n", st.FaultsInjected)
	fmt.Printf("detections:        %d (corrected %d, rollbacks %d)\n", st.Detections, st.Corrections, st.Rollbacks)
	fmt.Printf("checkpoints:       %d\n", st.Checkpoints)
	fmt.Printf("model time:        %.4f s (iter %.4f, verif %.4f, ckpt %.4f, recovery %.4f)\n",
		st.SimTime, st.TimeIter, st.TimeVerif, st.TimeCkpt, st.TimeRecovery)
	fmt.Printf("final residual:    %.3e (relative)\n", st.FinalResidual)
	fmt.Printf("solution error:    %.3e (max abs vs manufactured solution)\n", vec.MaxAbsDiff(x, xTrue))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgsolve: %v\n", err)
		os.Exit(1)
	}
}

func loadMatrix(path, gen string, n int) (*sparse.CSR, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sparse.ReadMatrixMarket(f)
	}
	switch {
	case gen == "poisson2d":
		side := intSqrt(n)
		return sparse.Poisson2D(side, side), nil
	case gen == "poisson3d":
		side := intCbrt(n)
		return sparse.Poisson3D(side, side, side), nil
	case gen == "laplacian":
		return sparse.RandomGraphLaplacian(n, 6, 0.01, 42), nil
	case strings.HasPrefix(gen, "suite:"):
		id, err := strconv.Atoi(strings.TrimPrefix(gen, "suite:"))
		if err != nil {
			return nil, fmt.Errorf("bad suite id in %q", gen)
		}
		m, ok := sim.SuiteByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown suite matrix %d", id)
		}
		scale := 1
		if n > 0 && n < m.N {
			scale = m.N / n
		}
		return m.Generate(scale), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func parseScheme(name string) (core.Scheme, error) {
	switch strings.ToLower(name) {
	case "online-detection", "online":
		return core.OnlineDetection, nil
	case "abft-detection", "abft-d":
		return core.ABFTDetection, nil
	case "abft-correction", "abft-c":
		return core.ABFTCorrection, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

func intSqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

func intCbrt(n int) int {
	s := 1
	for s*s*s < n {
		s++
	}
	return s
}
