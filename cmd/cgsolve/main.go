// Command cgsolve solves a sparse SPD linear system with one of the
// resilient CG schemes, optionally under silent-error injection, and
// reports the execution statistics.
//
// The matrix comes from a Matrix Market file (-matrix) or from a built-in
// generator (-gen poisson2d|poisson3d|tridiag|laplacian|randomspd|
// suite:<id>), resolved through the harness matrix-spec grammar. The
// right-hand side is manufactured from a random solution, so the reported
// solution error is exact.
//
// Examples:
//
//	cgsolve -gen poisson2d -n 10000 -scheme abft-correction -alpha 0.0625
//	cgsolve -matrix A.mtx -scheme online-detection -alpha 0.01 -seed 7
//	cgsolve -gen poisson2d -n 1000000 -workers 0   # pool-parallel kernels
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/pool"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cgsolve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cgsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		matrixPath = fs.String("matrix", "", "Matrix Market file with an SPD matrix")
		gen        = fs.String("gen", "poisson2d", "generator when -matrix is empty: poisson2d, poisson3d, tridiag, laplacian, randomspd, suite:<id>")
		n          = fs.Int("n", 10000, "target dimension for generated matrices")
		schemeName = fs.String("scheme", "abft-correction", "resilience scheme: online-detection, abft-detection, abft-correction")
		alpha      = fs.Float64("alpha", 0, "expected silent errors per iteration (0 = fault-free)")
		tol        = fs.Float64("tol", 1e-8, "relative residual tolerance")
		s          = fs.Int("s", 0, "checkpoint interval in chunks (0 = model-optimal)")
		d          = fs.Int("d", 0, "verification interval in iterations, online scheme only (0 = model-optimal)")
		seed       = fs.Int64("seed", 1, "RNG seed for the fault injector and the manufactured solution")
		workers    = fs.Int("workers", 1, "worker pool size for the solver kernels: 1 = sequential, 0 = GOMAXPROCS")
		verbose    = fs.Bool("v", false, "trace detections, corrections and rollbacks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	a, err := loadMatrix(*matrixPath, *gen, *n)
	if err != nil {
		return err
	}
	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}

	b, xTrue := harness.RHS(a, *seed)
	cfg := core.Config{Scheme: scheme, S: *s, D: *d, Tol: *tol}
	if *alpha > 0 {
		cfg.Injector = fault.New(fault.Config{Alpha: *alpha, Seed: *seed})
	}
	if *workers != 1 {
		cfg.Pool = pool.New(*workers)
	}
	if *verbose {
		cfg.Trace = func(format string, args ...any) {
			fmt.Fprintf(stderr, "trace: "+format+"\n", args...)
		}
	}

	x, st, solveErr := core.Solve(a, b, cfg)
	fmt.Fprintf(stdout, "matrix:            %d x %d, %d nonzeros (%.2e density)\n", a.Rows, a.Cols, a.NNZ(), a.Density())
	fmt.Fprintf(stdout, "scheme:            %v (d=%d, s=%d)\n", st.Scheme, st.D, st.S)
	fmt.Fprintf(stdout, "converged:         %v\n", st.Converged)
	fmt.Fprintf(stdout, "useful iterations: %d (total executed %d)\n", st.UsefulIterations, st.TotalIterations)
	fmt.Fprintf(stdout, "faults injected:   %d\n", st.FaultsInjected)
	fmt.Fprintf(stdout, "detections:        %d (corrected %d, rollbacks %d)\n", st.Detections, st.Corrections, st.Rollbacks)
	fmt.Fprintf(stdout, "checkpoints:       %d\n", st.Checkpoints)
	fmt.Fprintf(stdout, "model time:        %.4f s (iter %.4f, verif %.4f, ckpt %.4f, recovery %.4f)\n",
		st.SimTime, st.TimeIter, st.TimeVerif, st.TimeCkpt, st.TimeRecovery)
	fmt.Fprintf(stdout, "final residual:    %.3e (relative)\n", st.FinalResidual)
	fmt.Fprintf(stdout, "solution error:    %.3e (max abs vs manufactured solution)\n", vec.MaxAbsDiff(x, xTrue))
	return solveErr
}

// loadMatrix resolves -matrix / -gen through the harness matrix specs,
// keeping the historical laplacian parameters (shift 0.01, seed 42).
func loadMatrix(path, gen string, n int) (*sparse.CSR, error) {
	if path != "" {
		return harness.FileMatrixSpec(path).Build()
	}
	ms, err := harness.NewMatrixSpec(gen, n, 42)
	if err != nil {
		return nil, err
	}
	if ms.Gen == "laplacian" {
		ms.Shift = 0.01
	}
	return ms.Build()
}

// parseScheme resolves the resilient scheme slugs (case-insensitively, so
// historical spellings like "ABFT-Correction" keep working). The
// unprotected baseline is resbench territory, not a resilient solve.
func parseScheme(name string) (core.Scheme, error) {
	scheme, unprotected, err := harness.ParseScheme(strings.ToLower(name))
	if err != nil {
		return 0, err
	}
	if unprotected {
		return 0, fmt.Errorf("unknown scheme %q (cgsolve runs the resilient schemes; use resbench for unprotected baselines)", name)
	}
	return scheme, nil
}
