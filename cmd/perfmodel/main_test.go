package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAbstractModel(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-titer", "1", "-tverif", "0.2", "-tcp", "1.9", "-trec", "1.9", "-alpha", "0.0625"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v) failed: %v", args, err)
	}
	out := stdout.String()
	for _, want := range []string{"abstract model:", "detection :", "correction:", "Young period:", "Daly period:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSuiteDerivedCosts(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-suite", "341", "-scale", "128"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v) failed: %v", args, err)
	}
	out := stdout.String()
	if !strings.Contains(out, "matrix #341") {
		t.Fatalf("suite header missing:\n%s", out)
	}
	for _, scheme := range []string{"Online-Detection", "ABFT-Detection", "ABFT-Correction"} {
		if !strings.Contains(out, scheme) {
			t.Fatalf("output missing scheme %s:\n%s", scheme, out)
		}
	}
}

func TestRunBadArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-suite", "77"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "unknown suite matrix 77") {
		t.Fatalf("unknown suite id must fail, got %v", err)
	}
	if err := run([]string{"-zzz"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "flag provided but not defined") {
		t.Fatalf("bad flag must fail, got %v", err)
	}
}
