// Command perfmodel queries the paper's performance model (Section 4):
// given the resilience costs and a fault rate, it prints the chunk success
// probabilities, the optimal checkpoint intervals per scheme (Eq. (6)) and
// the predicted overheads, plus the Young/Daly reference periods.
//
// Costs can be given directly (-titer/-tverif/-tcp/-trec, in arbitrary
// consistent units) or derived from a suite matrix (-suite 341 -scale 16).
//
// Example:
//
//	perfmodel -suite 341 -scale 16 -alpha 0.0625
//	perfmodel -titer 1 -tverif 0.1 -tcp 2 -trec 2 -lambda 0.01
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "perfmodel: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("perfmodel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suiteID = fs.Int("suite", 0, "derive costs from this suite matrix id (0 = use explicit costs)")
		scale   = fs.Int("scale", 16, "suite downscale factor")
		alpha   = fs.Float64("alpha", 1.0/16, "expected faults per iteration (λ with Titer = 1)")
		titer   = fs.Float64("titer", 1, "iteration cost")
		tverif  = fs.Float64("tverif", 0.1, "verification cost per chunk")
		tcp     = fs.Float64("tcp", 2, "checkpoint cost")
		trec    = fs.Float64("trec", 2, "recovery cost")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *suiteID != 0 {
		sm, ok := harness.SuiteByID(*suiteID)
		if !ok {
			return fmt.Errorf("unknown suite matrix %d", *suiteID)
		}
		a := sm.Generate(*scale)
		fmt.Fprintf(stdout, "matrix #%d at scale %d: n=%d nnz=%d\n\n", sm.ID, *scale, a.Rows, a.NNZ())
		for _, scheme := range core.Schemes {
			costs := core.NewCosts(a, scheme, core.DefaultCostParams())
			d, s := core.OptimalIntervals(a, scheme, *alpha, core.DefaultCostParams())
			p := model.Params{
				T:          float64(d),
				Tverif:     costs.Tverif / costs.Titer,
				Tcp:        costs.Tcp / costs.Titer,
				Trec:       costs.Trec / costs.Titer,
				Lambda:     *alpha,
				Correcting: scheme == core.ABFTCorrection,
			}
			fmt.Fprintf(stdout, "%-18s Titer=%.3e s  Tverif/Titer=%.3f  Tcp/Titer=%.3f\n",
				scheme, costs.Titer, costs.Tverif/costs.Titer, costs.Tcp/costs.Titer)
			fmt.Fprintf(stdout, "%-18s q=%.6f  optimal d=%d s=%d  predicted overhead=%.4f\n\n",
				"", p.Q(), d, s, p.Overhead(s))
		}
		return nil
	}

	fmt.Fprintf(stdout, "abstract model: Titer=%v Tverif=%v Tcp=%v Trec=%v lambda=%v\n\n",
		*titer, *tverif, *tcp, *trec, *alpha)
	for _, correcting := range []bool{false, true} {
		p := model.Params{
			T: *titer, Tverif: *tverif, Tcp: *tcp, Trec: *trec,
			Lambda: *alpha, Correcting: correcting,
		}
		s, ov := p.OptimalS(100000)
		label := "detection "
		if correcting {
			label = "correction"
		}
		fmt.Fprintf(stdout, "%s: q=%.6f  s*=%d  E(s*,T)=%.4f  overhead=%.4f\n",
			label, p.Q(), s, p.FrameTime(s), ov)
	}
	fmt.Fprintf(stdout, "\nYoung period: %.3f   Daly period: %.3f\n",
		model.YoungPeriod(*tcp, *alpha), model.DalyPeriod(*tcp, *trec, *alpha))
	return nil
}
