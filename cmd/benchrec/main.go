// Command benchrec measures the hot kernels of this repository — the plain
// and fused SpMxV variants, the ABFT-protected product + verification, the
// pool-parallel product and the steady-state solver iterations — and emits
// a schema-versioned JSON record. Committed snapshots (BENCH_1.json,
// BENCH_2.json, …) seed the perf trajectory: every future performance PR
// records a new snapshot on the same hardware class and compares against
// the last one, so regressions and wins both leave a machine-readable
// trail.
//
//	benchrec -list
//	benchrec -run spmv
//	benchrec -out BENCH_2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/abft"
	"repro/internal/checksum"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vec"

	"math/rand"
)

// Schema identifies the record layout; bump on incompatible changes.
// v2 added the worker count of the pool the parallel kernels ran on —
// without it, two snapshots of pool-parallel kernels are not comparable.
const Schema = 2

// Record is one benchrec snapshot.
type Record struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is the size of the shared worker pool the pool-parallel
	// kernels dispatch onto (pool.Default()).
	Workers int            `json:"workers"`
	Kernels []KernelTiming `json:"kernels"`
}

// KernelTiming is the measured cost of one kernel.
type KernelTiming struct {
	// Name identifies the kernel, path-like ("spmv/protected-correct").
	Name string `json:"name"`
	// N is the number of iterations the measurement averaged over.
	N int `json:"n"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard Go benchmark
	// metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// kernel names one benchmarkable hot path.
type kernel struct {
	name string
	fn   func(b *testing.B)
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// kernels builds the fixed benchmark registry. Matrices are deterministic,
// sized so one op is microseconds (suite-like 2D Poisson systems).
func kernels() []kernel {
	return []kernel{
		{"spmv/plain", func(b *testing.B) {
			a := sparse.Poisson2D(96, 96)
			x := randVec(a.Cols, 1)
			y := make([]float64, a.Rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MulVec(y, x)
			}
		}},
		{"spmv/robust-fused", func(b *testing.B) {
			a := sparse.Poisson2D(96, 96)
			x := randVec(a.Cols, 1)
			y := make([]float64, a.Rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, _ = a.MulVecRobustSums(y, x)
			}
		}},
		{"spmv/protected-detect", func(b *testing.B) { benchProtected(b, abft.Detect) }},
		{"spmv/protected-correct", func(b *testing.B) { benchProtected(b, abft.DetectCorrect) }},
		{"spmv/pool-parallel", func(b *testing.B) {
			a := sparse.Poisson2D(320, 320)
			p := pool.Default()
			x := randVec(a.Cols, 1)
			y := make([]float64, a.Rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MulVecParallel(p, y, x)
			}
		}},
		{"verify/norm", func(b *testing.B) { benchVerify(b, abft.TolNorm) }},
		{"verify/component", func(b *testing.B) { benchVerify(b, abft.TolComponent) }},
		{"dot/blocked", func(b *testing.B) {
			x := randVec(1<<16, 1)
			y := randVec(1<<16, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = vec.DotPool(nil, x, y)
			}
		}},
		{"solver/cg-steady-state", func(b *testing.B) {
			a := sparse.Poisson2D(48, 48)
			rhs := randVec(a.Rows, 3)
			opt := solver.Options{Tol: 1e-8, Ws: solver.NewWorkspace()}
			if _, err := solver.CG(a, rhs, opt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.CG(a, rhs, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"core/abft-correction-steady-state", func(b *testing.B) {
			a := sparse.Poisson2D(48, 48)
			rhs := randVec(a.Rows, 3)
			cfg := core.Config{Scheme: core.ABFTCorrection, Tol: 1e-8, S: 4, Ws: core.NewWorkspace()}
			if _, _, err := core.Solve(a, rhs, cfg); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(a, rhs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

func benchProtected(b *testing.B, mode abft.Mode) {
	a := sparse.Poisson2D(96, 96)
	p := abft.NewProtected(a, mode)
	x := randVec(a.Rows, 1)
	ref := checksum.NewVector(x)
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := p.MulVec(y, x)
		if out := p.Verify(y, x, ref, sr); out.Detected {
			b.Fatal("false positive")
		}
	}
}

func benchVerify(b *testing.B, policy abft.TolerancePolicy) {
	a := sparse.Poisson2D(96, 96)
	p := abft.NewProtected(a, abft.DetectCorrect)
	p.SetPolicy(policy)
	x := randVec(a.Rows, 1)
	ref := checksum.NewVector(x)
	y := make([]float64, a.Rows)
	sr := p.MulVec(y, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := p.Verify(y, x, ref, sr); out.Detected {
			b.Fatal("false positive")
		}
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchrec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list kernel names instead of measuring")
		filter  = fs.String("run", "", "substring filter on kernel names")
		outPath = fs.String("out", "", "also write the JSON record to this file")
		quiet   = fs.Bool("q", false, "suppress per-kernel progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	selected := make([]kernel, 0)
	for _, k := range kernels() {
		if *filter == "" || strings.Contains(k.name, *filter) {
			selected = append(selected, k)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no kernels match %q", *filter)
	}
	if *list {
		for _, k := range selected {
			fmt.Fprintln(stdout, k.name)
		}
		return nil
	}

	rec := Record{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    pool.Default().Workers(),
	}
	for _, k := range selected {
		if !*quiet {
			fmt.Fprintf(stderr, "benchrec: %s\n", k.name)
		}
		r := testing.Benchmark(k.fn)
		rec.Kernels = append(rec.Kernels, KernelTiming{
			Name:        k.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		fenc := json.NewEncoder(f)
		fenc.SetIndent("", "  ")
		if err := fenc.Encode(rec); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
