package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run(-list) failed: %v", err)
	}
	for _, want := range []string{"spmv/protected-correct", "solver/cg-steady-state", "verify/norm"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestRunFilterUnknown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "no-such-kernel"}, &stdout, &stderr); err == nil {
		t.Fatal("expected an error for an unmatched filter")
	}
}

func TestRunEmitsSchemaVersionedRecord(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	// dot/blocked is the cheapest kernel; one measurement keeps the test fast.
	if err := run([]string{"-run", "dot/blocked", "-q", "-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	for name, data := range map[string][]byte{"stdout": stdout.Bytes(), "file": mustRead(t, out)} {
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatalf("%s: bad JSON: %v", name, err)
		}
		if rec.Schema != Schema {
			t.Errorf("%s: schema %d, want %d", name, rec.Schema, Schema)
		}
		if rec.GOMAXPROCS < 1 {
			t.Errorf("%s: gomaxprocs %d, want >= 1", name, rec.GOMAXPROCS)
		}
		if rec.Workers < 1 {
			t.Errorf("%s: workers %d, want >= 1", name, rec.Workers)
		}
		if len(rec.Kernels) != 1 || rec.Kernels[0].Name != "dot/blocked" {
			t.Fatalf("%s: kernels = %+v", name, rec.Kernels)
		}
		k := rec.Kernels[0]
		if k.NsPerOp <= 0 || k.N <= 0 {
			t.Errorf("%s: implausible timing %+v", name, k)
		}
		if k.AllocsPerOp != 0 {
			t.Errorf("%s: dot/blocked allocated %d/op, want 0", name, k.AllocsPerOp)
		}
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
