package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestListContainsCatalogAndCampaigns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{
		"smoke/cg/abft-correction/poisson2d",
		"figure1/m341/online-detection/mtbf100",
		"table1/m2213/abft-detection/model-s",
		"scenarios",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestListFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list", "-filter", "figure1/m2213"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout.String(), "smoke/") {
		t.Fatalf("filter leaked other scenarios:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "9 scenarios") {
		t.Fatalf("figure1/m2213 should expand to 3 schemes × 3 MTBFs:\n%s", stdout.String())
	}
}

func TestRunEmitsSchemaStableJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "smoke/cg/abft-correction/tridiag", "-json", "-q"}, &stdout, &stderr); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	rs, err := harness.ReadResults(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("want 1 record, got %d", len(rs))
	}
	r := rs[0]
	if r.Schema != harness.SchemaVersion {
		t.Fatalf("schema %d, want %d", r.Schema, harness.SchemaVersion)
	}
	if r.Scenario.Name != "smoke/cg/abft-correction/tridiag" || r.Converged != 1 {
		t.Fatalf("unexpected record: %+v", r)
	}
	if r.ResidualHash == "" || r.BaselineTime <= 0 {
		t.Fatalf("record incomplete: %+v", r)
	}
}

// TestRunDeterministicAcrossWorkers pins the CLI-level determinism
// contract: -workers changes wall clock only, never the canonical record.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	canonical := func(workersFlag string) string {
		var stdout, stderr bytes.Buffer
		args := []string{"-run", "smoke/pcg/abft-correction/suite2213", "-json", "-q", "-workers", workersFlag}
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("workers=%s: %v", workersFlag, err)
		}
		rs, err := harness.ReadResults(&stdout)
		if err != nil || len(rs) != 1 {
			t.Fatalf("workers=%s: bad output: %v", workersFlag, err)
		}
		b, _ := json.Marshal(rs[0].Canonical())
		return string(b)
	}
	want := canonical("1")
	for _, w := range []string{"2", "4"} {
		if got := canonical(w); got != want {
			t.Fatalf("workers=%s record diverged:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestShardMergeRoundTrip splits the smoke tier across two shards, merges
// the outputs and checks the merged set matches an unsharded run.
func TestShardMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	shard0 := filepath.Join(dir, "s0.json")
	shard1 := filepath.Join(dir, "s1.json")
	full := filepath.Join(dir, "full.json")
	merged := filepath.Join(dir, "merged.json")

	for _, tc := range [][]string{
		{"-filter", "smoke/cg", "-shard", "0/2", "-q", "-out", shard0},
		{"-filter", "smoke/cg", "-shard", "1/2", "-q", "-out", shard1},
		{"-filter", "smoke/cg", "-q", "-out", full},
		{"-merge", shard0 + "," + shard1, "-out", merged},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(tc, &stdout, &stderr); err != nil {
			t.Fatalf("run(%v): %v\nstderr: %s", tc, err, stderr.String())
		}
	}

	read := func(path string) []harness.Result {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rs, err := harness.ReadResults(f)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	want, got := read(full), read(merged)
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	// The full run is already name-sorted (registry order), like the merge.
	for i := range want {
		a, _ := json.Marshal(want[i].Canonical())
		b, _ := json.Marshal(got[i].Canonical())
		if string(a) != string(b) {
			t.Fatalf("record %d differs between sharded and unsharded runs:\n%s\nvs\n%s", i, b, a)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{nil, "nothing selected"},
		{[]string{"-run", "no/such/scenario"}, "unknown scenario"},
		{[]string{"-filter", "smoke", "-shard", "9"}, "bad shard spec"},
		{[]string{"-merge", "/nonexistent/x.json"}, "no such file"},
		{[]string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		err := run(tc.args, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("run(%v) error = %v, want containing %q", tc.args, err, tc.wantErr)
		}
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	// Same scenario name, different deterministic content.
	write := func(path string, mean float64) {
		rs := []harness.Result{{
			Schema:      harness.SchemaVersion,
			Scenario:    harness.Scenario{Name: "x"},
			MeanSimTime: mean,
		}}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := harness.WriteResults(f, rs); err != nil {
			t.Fatal(err)
		}
	}
	write(a, 1)
	write(b, 2)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-merge", a + "," + b}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "conflicting results") {
		t.Fatalf("conflicting merge error = %v", err)
	}
}
