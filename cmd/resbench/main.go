// Command resbench is the entry point of the scenario harness: it lists,
// filters, runs and aggregates the registered resilience scenarios and
// emits machine-readable result records (see internal/harness).
//
// List and filter the registry:
//
//	resbench -list
//	resbench -list -filter figure1
//
// Run scenarios (by exact name or by substring filter) and emit JSON:
//
//	resbench -run smoke/cg/abft-correction/poisson2d -json
//	resbench -filter smoke -workers 4 -out smoke.json
//
// Split a campaign across processes and merge the shard outputs:
//
//	resbench -filter figure1 -shard 0/2 -out shard0.json &
//	resbench -filter figure1 -shard 1/2 -out shard1.json &
//	wait; resbench -merge shard0.json,shard1.json -out figure1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "resbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("resbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list matching scenarios instead of running them")
		filter   = fs.String("filter", "", "substring filter on scenario names and tags")
		runName  = fs.String("run", "", "run the scenario with this exact name")
		shard    = fs.String("shard", "", "run only the k-th of n round-robin shards (format k/n)")
		workers  = fs.Int("workers", 0, "worker pool size: 0 = GOMAXPROCS, 1 = sequential")
		seed     = fs.Int64("seed", 0, "override the scenario seeds (0 = keep)")
		reps     = fs.Int("reps", 0, "override the scenario repetitions (0 = keep)")
		baseline = fs.Bool("baseline", false, "force the unprotected reference solve on")
		jsonOut  = fs.Bool("json", false, "emit JSON records on stdout instead of the text summary")
		outPath  = fs.String("out", "", "also write the JSON records to this file")
		merge    = fs.String("merge", "", "merge these comma-separated shard output files instead of running")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	registerCampaigns()

	if *merge != "" {
		return mergeFiles(strings.Split(*merge, ","), *jsonOut, *outPath, stdout)
	}

	scenarios, err := selectScenarios(*runName, *filter, *shard)
	if err != nil {
		return err
	}
	if *list {
		return writeList(stdout, scenarios)
	}
	if *runName == "" && *filter == "" {
		return fmt.Errorf("nothing selected: use -run <name>, -filter <substr> or -list")
	}

	opts := harness.RunOptions{Workers: *workers, Seed: *seed, Reps: *reps, Baseline: *baseline}
	results := make([]harness.Result, 0, len(scenarios))
	var failed int
	for i, sc := range scenarios {
		if !*quiet {
			fmt.Fprintf(stderr, "resbench: [%d/%d] %s\n", i+1, len(scenarios), sc.Name)
		}
		res, err := harness.Run(sc, opts)
		if err != nil {
			failed++
			fmt.Fprintf(stderr, "resbench: %s: %v\n", sc.Name, err)
			continue
		}
		results = append(results, res)
	}
	if err := emit(results, *jsonOut, *outPath, stdout); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed to run", failed, len(scenarios))
	}
	return nil
}

// registerCampaigns adds smoke-scale cells of the paper campaigns (Table 1
// and Figure 1 on two suite matrices) to the built-in catalog, so the CI
// perf job and local runs can drive them by name.
func registerCampaigns() {
	suite := smokeSuite()
	fig := sim.Figure1Config{Scale: 96, Reps: 2, MTBFs: harness.LogSpace(1e2, 1e4, 3), Seed: 1}
	for _, sc := range fig.Figure1Scenarios(suite) {
		harness.MustRegister(sc)
	}
	tab := sim.Table1Config{Scale: 96, Reps: 2, Seed: 1}
	for _, sc := range tab.Table1Scenarios(suite) {
		harness.MustRegister(sc)
	}
}

func smokeSuite() []sim.SuiteMatrix {
	var suite []sim.SuiteMatrix
	for _, id := range []int{341, 2213} {
		if sm, ok := sim.SuiteByID(id); ok {
			suite = append(suite, sm)
		}
	}
	return suite
}

func selectScenarios(runName, filter, shard string) ([]harness.Scenario, error) {
	if runName != "" {
		sc, ok := harness.Lookup(runName)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (try -list)", runName)
		}
		return []harness.Scenario{sc}, nil
	}
	return harness.Shard(harness.Match(filter), shard)
}

func writeList(w io.Writer, scenarios []harness.Scenario) error {
	for _, sc := range scenarios {
		desc := sc.Description
		if desc == "" {
			desc = fmt.Sprintf("%s %s on %s, α=%g, reps=%d", sc.Solver, sc.Scheme, sc.Matrix, sc.Alpha, sc.Reps)
		}
		if _, err := fmt.Fprintf(w, "%-55s %s\n", sc.Name, desc); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d scenarios\n", len(scenarios))
	return err
}

func emit(results []harness.Result, jsonOut bool, outPath string, stdout io.Writer) error {
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := harness.WriteResults(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonOut {
		return harness.WriteResults(stdout, results)
	}
	for _, r := range results {
		if _, err := fmt.Fprintln(stdout, summarize(r)); err != nil {
			return err
		}
	}
	return nil
}

// summarize renders one human-readable line per record.
func summarize(r harness.Result) string {
	line := fmt.Sprintf("%-55s n=%-6d reps=%d conv=%d fail=%d iters=%.1f time=%.6g",
		r.Scenario.Name, r.Matrix.N, r.Reps, r.Converged, r.Failures,
		r.MeanUsefulIters, r.MeanSimTime)
	if r.BaselineTime > 0 {
		line += fmt.Sprintf(" overhead=%.2f%%", r.Overhead*100)
	}
	if r.FaultsInjected > 0 {
		line += fmt.Sprintf(" faults=%d det=%d corr=%d rb=%d",
			r.FaultsInjected, r.Detections, r.Corrections, r.Rollbacks)
	}
	return line + " " + r.ResidualHash
}

func mergeFiles(paths []string, jsonOut bool, outPath string, stdout io.Writer) error {
	var shards [][]harness.Result
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		rs, err := harness.ReadResults(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		shards = append(shards, rs)
	}
	merged, err := harness.Merge(shards...)
	if err != nil {
		return err
	}
	if !jsonOut && outPath == "" {
		jsonOut = true // merged records are JSON-shaped; default to emitting them
	}
	return emit(merged, jsonOut, outPath, stdout)
}
