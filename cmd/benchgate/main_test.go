package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseBench = `goos: linux
BenchmarkSpMxVProtectedDetect   1000   1000 ns/op   0 B/op   0 allocs/op
BenchmarkSpMxVProtectedDetect   1000   1020 ns/op   0 B/op   0 allocs/op
BenchmarkSpMxVProtectedDetect   1000    980 ns/op   0 B/op   0 allocs/op
BenchmarkPoolSpMVParallel-8     500    2000 ns/op
BenchmarkOther                  100   50000 ns/op
PASS
`

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	head := writeBench(t, "head.txt", strings.ReplaceAll(baseBench, "1000 ns/op", "1050 ns/op"))
	var stdout, stderr bytes.Buffer
	err := run([]string{"-base", base, "-head", head, "-gate", "^BenchmarkPoolSpMV|^BenchmarkSpMxVProtected"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("gate failed on a 5%% delta: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "perf gate passed") {
		t.Fatalf("missing pass summary:\n%s", stdout.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	head := writeBench(t, "head.txt", strings.ReplaceAll(baseBench, "2000 ns/op", "2500 ns/op"))
	var stdout, stderr bytes.Buffer
	err := run([]string{"-base", base, "-head", head, "-gate", "^BenchmarkPoolSpMV|^BenchmarkSpMxVProtected"}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("gate passed a 25%% regression:\n%s", stdout.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkPoolSpMVParallel-8") {
		t.Fatalf("failure does not name the regressed benchmark: %v", err)
	}
}

func TestUngatedRegressionIsReportOnly(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	head := writeBench(t, "head.txt", strings.ReplaceAll(baseBench, "50000 ns/op", "90000 ns/op"))
	var stdout, stderr bytes.Buffer
	err := run([]string{"-base", base, "-head", head, "-gate", "^BenchmarkPoolSpMV|^BenchmarkSpMxVProtected"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("ungated regression must not fail the gate: %v", err)
	}
	if !strings.Contains(stdout.String(), "BenchmarkOther") {
		t.Fatalf("ungated benchmark missing from the report:\n%s", stdout.String())
	}
}

func TestGateRejectsEmptyGateMatch(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	head := writeBench(t, "head.txt", baseBench)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-base", base, "-head", head, "-gate", "^BenchmarkNothingMatches$"}, &stdout, &stderr); err == nil {
		t.Fatal("an unmatched gate regexp must fail loudly (silently gating nothing hides regressions)")
	}
}

func TestNewBenchmarkWithoutBaselineIsReported(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	head := writeBench(t, "head.txt", baseBench+"BenchmarkSpMxVProtectedNew   1000   10 ns/op\n")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-base", base, "-head", head, "-gate", "^BenchmarkSpMxVProtected"}, &stdout, &stderr); err != nil {
		t.Fatalf("new benchmark must not fail the gate: %v", err)
	}
	if !strings.Contains(stdout.String(), "no baseline") {
		t.Fatalf("new benchmark not reported:\n%s", stdout.String())
	}
}

func TestGatedBenchmarkMissingFromHeadFails(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	head := writeBench(t, "head.txt", strings.ReplaceAll(baseBench,
		"BenchmarkSpMxVProtectedDetect", "BenchmarkSpMxVProtectedRenamed"))
	var stdout, stderr bytes.Buffer
	err := run([]string{"-base", base, "-head", head, "-gate", "^BenchmarkPoolSpMV|^BenchmarkSpMxVProtected"}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("gate passed although a gated benchmark vanished from head:\n%s", stdout.String())
	}
	if !strings.Contains(err.Error(), "missing from head") {
		t.Fatalf("failure does not explain the missing benchmark: %v", err)
	}
}
