// Command benchgate compares two `go test -bench` output files and fails
// (exit 1) when a gated benchmark regressed beyond the threshold. It is
// the CI promotion of the report-only benchstat comparison: the handful of
// kernel benchmarks named by -gate become merge-blocking, everything else
// stays informational.
//
//	go test -bench 'PoolSpMV|SpMxVProtected' -count 5 > head.txt
//	(cd base && go test -bench ... -count 5) > base.txt
//	benchgate -base base.txt -head head.txt \
//	          -gate '^BenchmarkPoolSpMV|^BenchmarkSpMxVProtected' -threshold 0.10
//
// Per benchmark the median ns/op across repetitions is compared, which
// tolerates the occasional noisy run without the machinery of a full
// statistical test.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+)\s+(\d+)\s+([0-9.]+) ns/op`)

// parseBench collects ns/op samples per benchmark name from go test -bench
// output. The -cpu suffix (e.g. "-8") is kept: different parallelism is a
// different benchmark.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], ns)
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("base", "", "baseline go test -bench output file")
		headPath  = fs.String("head", "", "candidate go test -bench output file")
		gate      = fs.String("gate", "", "regexp of benchmark names that block on regression")
		threshold = fs.Float64("threshold", 0.10, "maximum tolerated relative ns/op regression for gated benchmarks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *headPath == "" || *gate == "" {
		return fmt.Errorf("need -base, -head and -gate")
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		return fmt.Errorf("bad -gate regexp: %v", err)
	}

	read := func(path string) (map[string][]float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBench(f)
	}
	base, err := read(*basePath)
	if err != nil {
		return err
	}
	head, err := read(*headPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	gatedSeen := 0
	for _, name := range names {
		hs := head[name]
		bs, ok := base[name]
		gated := gateRe.MatchString(name)
		if !ok {
			fmt.Fprintf(stdout, "%-55s new benchmark (no baseline)\n", name)
			continue
		}
		bm, hm := median(bs), median(hs)
		delta := hm/bm - 1
		status := "ok"
		if gated {
			gatedSeen++
			status = "gated"
			if delta > *threshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %.1f%% slower (%.0f → %.0f ns/op)", name, delta*100, bm, hm))
			}
		}
		fmt.Fprintf(stdout, "%-55s %12.0f → %12.0f ns/op  %+6.1f%%  [%s]\n", name, bm, hm, delta*100, status)
	}
	// A gated benchmark that exists in the baseline but vanished from the
	// head run would otherwise escape the gate entirely (deleted or renamed
	// kernels are exactly the changes that need a human decision).
	baseNames := make([]string, 0, len(base))
	for name := range base {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := head[name]; !ok && gateRe.MatchString(name) {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from head run", name))
			fmt.Fprintf(stdout, "%-55s missing from head  [FAIL]\n", name)
		}
	}
	if gatedSeen == 0 {
		return fmt.Errorf("no benchmark matched the gate regexp %q", *gate)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate: %d regression(s) beyond %.0f%%:\n  %s",
			len(failures), *threshold*100, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(stdout, "perf gate passed: %d gated benchmark(s) within %.0f%%\n", gatedSeen, *threshold*100)
	return nil
}
