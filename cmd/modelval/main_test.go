package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-scale", "128", "-reps", "1", "-matrices", "2213", "-seed", "3", "-q"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v) failed: %v", args, err)
	}
	out := stdout.String()
	if !strings.Contains(out, "Et(s~1)") {
		t.Fatalf("table header missing:\n%s", out)
	}
	// Header plus exactly one matrix row.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 1 {
		t.Fatalf("table has %d data rows, want 1:\n%s", lines, out)
	}
	if !strings.Contains(out, "  2213 ") {
		t.Fatalf("row for matrix 2213 missing:\n%s", out)
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-matrices", "xyz"}, "bad matrix id"},
		{[]string{"-matrices", "42"}, "unknown matrix id 42"},
		{[]string{"-nope"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(tc.args, &stdout, &stderr); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("run(%v) error = %v, want containing %q", tc.args, err, tc.wantErr)
		}
	}
}
