// Command modelval reproduces the paper's Table 1: for each suite matrix
// and both ABFT schemes, the model-chosen checkpoint interval s̃ against the
// empirically best s*, their average execution times, and the relative loss
// of trusting the model. Repetitions fan out across the worker pool
// (-workers).
//
// Example (fast, downscaled):
//
//	modelval -scale 32 -reps 10
//
// Full paper-scale reproduction (slow):
//
//	modelval -scale 1 -reps 50
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "modelval: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("modelval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale    = fs.Int("scale", 16, "matrix downscale factor (1 = full paper size)")
		reps     = fs.Int("reps", 50, "repetitions per (matrix, scheme, s) cell (the paper uses 50)")
		alpha    = fs.Float64("alpha", 1.0/16, "expected faults per iteration (the paper uses 1/16)")
		tol      = fs.Float64("tol", 1e-8, "solver tolerance")
		seed     = fs.Int64("seed", 1, "base RNG seed")
		workers  = fs.Int("workers", 0, "worker pool size for the trial fan-out: 0 = GOMAXPROCS, 1 = sequential")
		matrices = fs.String("matrices", "", "comma-separated UFL ids (default: all nine)")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	suite, err := sim.SelectSuite(*matrices)
	if err != nil {
		return err
	}

	cfg := sim.Table1Config{
		Scale:   *scale,
		Reps:    *reps,
		Alpha:   *alpha,
		Tol:     *tol,
		Seed:    *seed,
		Workers: *workers,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	rows := sim.RunTable1(cfg, suite)
	return sim.WriteTable1(stdout, rows)
}
