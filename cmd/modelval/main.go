// Command modelval reproduces the paper's Table 1: for each suite matrix
// and both ABFT schemes, the model-chosen checkpoint interval s̃ against the
// empirically best s*, their average execution times, and the relative loss
// of trusting the model.
//
// Example (fast, downscaled):
//
//	modelval -scale 32 -reps 10
//
// Full paper-scale reproduction (slow):
//
//	modelval -scale 1 -reps 50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
)

func main() {
	var (
		scale = flag.Int("scale", 16, "matrix downscale factor (1 = full paper size)")
		reps  = flag.Int("reps", 50, "repetitions per (matrix, scheme, s) cell (the paper uses 50)")
		alpha = flag.Float64("alpha", 1.0/16, "expected faults per iteration (the paper uses 1/16)")
		tol   = flag.Float64("tol", 1e-8, "solver tolerance")
		seed  = flag.Int64("seed", 1, "base RNG seed")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := sim.Table1Config{
		Scale: *scale,
		Reps:  *reps,
		Alpha: *alpha,
		Tol:   *tol,
		Seed:  *seed,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rows := sim.RunTable1(cfg, sim.PaperSuite)
	if err := sim.WriteTable1(os.Stdout, rows); err != nil {
		fmt.Fprintf(os.Stderr, "modelval: %v\n", err)
		os.Exit(1)
	}
}
