// Command resilientd is the resident resilient-solve service: it serves
// the HTTP/JSON API of internal/server — POST /v1/solve, GET /v1/stats,
// GET /v1/healthz — scheduling solve requests over the shared worker-pool
// engine with a bounded queue, per-request deadlines and a per-matrix
// artifact cache that keeps checksum encodings, partition plans,
// preconditioners and warm solver workspaces resident between requests.
//
//	resilientd -addr 127.0.0.1:8723
//	resilientd -workers 8 -concurrency 4 -queue 128 -cache 64
//
// SIGINT/SIGTERM drain gracefully: new solves are refused, everything
// already admitted completes and is delivered, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "resilientd: %v\n", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled (the signal
// path) or the listener fails. When started is non-nil it receives the
// bound address once the listener is up — tests bind :0 and read it back.
func run(ctx context.Context, args []string, stderr io.Writer, started chan<- net.Addr) error {
	fs := flag.NewFlagSet("resilientd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8723", "listen address")
		workers     = fs.Int("workers", 0, "kernel pool size: 0 = GOMAXPROCS, 1 = sequential kernels")
		concurrency = fs.Int("concurrency", 0, "solves executing at once (0 = GOMAXPROCS/2)")
		queue       = fs.Int("queue", 64, "bounded queue depth; beyond it requests get 429")
		maxCoalesce = fs.Int("max-coalesce", 0, "right-hand sides merged into one blocked solve when queued requests share a matrix and scenario (0 = 8)")
		cacheSize   = fs.Int("cache", 32, "per-matrix artifact cache entries (LRU)")
		cacheBytes  = fs.Int64("cache-bytes", 0, "artifact cache footprint budget in bytes (0 = 256 MiB, negative = unbounded)")
		cacheTTL    = fs.Duration("cache-ttl", 0, "age out cache entries idle this long (0 = 15m, negative = never)")
		shard       = fs.String("shard", "", "shard label stamped into result provenance and /v1/healthz (sharded deployments)")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 5*time.Minute, "clamp on requested deadlines")
		traceRing   = fs.Int("trace-ring", 0, "completed traces retained for /v1/tracez (0 = default)")
		adminToken  = fs.String("admin-token", "", "bearer token gating /debug/pprof (empty = disabled)")
		logFormat   = fs.String("log-format", "text", "log line format: text or json")
		quiet       = fs.Bool("q", false, "log warnings and errors only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.NewLogger(stderr, *logFormat, *quiet)

	srv := server.New(server.Config{
		Workers:        *workers,
		Concurrency:    *concurrency,
		QueueDepth:     *queue,
		MaxCoalesce:    *maxCoalesce,
		CacheEntries:   *cacheSize,
		CacheBytes:     *cacheBytes,
		CacheTTL:       *cacheTTL,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		ShardLabel:     *shard,
		TraceRing:      *traceRing,
		AdminToken:     *adminToken,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Shutdown()
		return err
	}
	if started != nil {
		started <- ln.Addr()
	}
	logger.Info("listening", "addr", ln.Addr().String(), "shard", *shard)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Shutdown()
		return err
	case <-ctx.Done():
	}
	logger.Info("draining")
	// Refuse new solves first — health probes see "draining", not a dead
	// listener — then stop accepting connections and let in-flight
	// handlers collect their solves, then drain the solve queue itself.
	srv.StartDraining()
	sctx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
	defer cancel()
	httpErr := hs.Shutdown(sctx)
	srv.Shutdown()
	logger.Info("drained")
	return httpErr
}
