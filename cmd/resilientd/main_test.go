package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, exercises
// the API end to end, and verifies that cancelling the run context (the
// signal path) drains and returns cleanly.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-q"}, io.Discard, started)
	}()

	var addr net.Addr
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("listener did not come up")
	}
	base := "http://" + addr.String()

	hz, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hz.StatusCode)
	}

	body := []byte(`{"matrix": {"gen": "poisson2d", "n": 64}, "solver": "cg", "seed": 5}`)
	post, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", post.StatusCode)
	}
	var resp server.SolveResponse
	if err := json.NewDecoder(post.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Converged != 1 || resp.Result.ResidualHash == "" {
		t.Errorf("solve record converged=%d hash=%q", resp.Result.Converged, resp.Result.ResidualHash)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &stderr, nil); err == nil {
		t.Fatal("expected a flag error")
	}
}

func TestRunRejectsBusyAddress(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := run(context.Background(), []string{"-addr", ln.Addr().String(), "-q"}, io.Discard, nil); err == nil {
		t.Fatal("expected a listen error on a busy address")
	}
}

// TestRunShardLabel pins the sharded-deployment provenance: the -shard
// label must surface in /v1/healthz and in every result record.
func TestRunShardLabel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-shard", "s7", "-q"}, io.Discard, started)
	}()
	var addr net.Addr
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("listener did not come up")
	}
	base := "http://" + addr.String()

	hz, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health server.HealthResponse
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Shard != "s7" || health.Status != "ok" {
		t.Errorf("healthz %+v, want shard s7 and status ok", health)
	}

	body := []byte(`{"matrix": {"gen": "poisson2d", "n": 64}, "seed": 5}`)
	post, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	var resp server.SolveResponse
	if err := json.NewDecoder(post.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Shard != "s7" {
		t.Errorf("result shard %q, want s7", resp.Result.Shard)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run returned %v after drain", err)
	}
}
