// Command matgen generates the synthetic test matrices (the paper-suite
// stand-ins and the other built-in generators) as Matrix Market files, so
// other tools and external solvers can consume identical inputs. Generator
// names resolve through the harness matrix-spec grammar, so matgen emits
// exactly the matrices the scenarios run on.
//
// Examples:
//
//	matgen -gen suite:341 -scale 16 -o m341.mtx
//	matgen -gen poisson2d -n 4096 -o poisson.mtx
//	matgen -suite -scale 32 -dir ./matrices
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/harness"
	"repro/internal/sparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "matgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("matgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gen   = fs.String("gen", "", "generator: suite:<id>, poisson2d, poisson3d, tridiag, laplacian, randomspd")
		n     = fs.Int("n", 4096, "dimension for non-suite generators")
		scale = fs.Int("scale", 16, "downscale factor for suite matrices")
		out   = fs.String("o", "", "output file (default stdout)")
		suite = fs.Bool("suite", false, "generate the whole nine-matrix suite")
		dir   = fs.String("dir", ".", "output directory for -suite")
		seed  = fs.Int64("seed", 42, "generator seed (non-suite)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *suite {
		for _, sm := range harness.PaperSuite {
			a := sm.Generate(*scale)
			path := filepath.Join(*dir, fmt.Sprintf("suite_%d_scale%d.mtx", sm.ID, *scale))
			if err := writeTo(path, a); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s (n=%d, nnz=%d)\n", path, a.Rows, a.NNZ())
		}
		return nil
	}

	a, err := build(*gen, *n, *scale, *seed)
	if err != nil {
		return err
	}
	if *out == "" {
		return sparse.WriteMatrixMarket(stdout, a)
	}
	if err := writeTo(*out, a); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s (n=%d, nnz=%d)\n", *out, a.Rows, a.NNZ())
	return nil
}

// build resolves the generator through the harness matrix specs (suite
// matrices take the explicit -scale; matgen's laplacian historically uses
// a zero diagonal shift, which the spec's zero value already encodes).
func build(gen string, n, scale int, seed int64) (*sparse.CSR, error) {
	if gen == "" {
		return nil, fmt.Errorf("need -gen or -suite")
	}
	ms, err := harness.NewMatrixSpec(gen, n, seed)
	if err != nil {
		return nil, err
	}
	if ms.Gen == "suite" {
		ms.N = 0
		ms.Scale = scale
	}
	return ms.Build()
}

func writeTo(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sparse.WriteMatrixMarket(f, a)
}
