// Command matgen generates the synthetic test matrices (the paper-suite
// stand-ins and the other built-in generators) as Matrix Market files, so
// other tools and external solvers can consume identical inputs.
//
// Examples:
//
//	matgen -gen suite:341 -scale 16 -o m341.mtx
//	matgen -gen poisson2d -n 4096 -o poisson.mtx
//	matgen -suite -scale 32 -dir ./matrices
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/sparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "matgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("matgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gen   = fs.String("gen", "", "generator: suite:<id>, poisson2d, poisson3d, laplacian, randomspd")
		n     = fs.Int("n", 4096, "dimension for non-suite generators")
		scale = fs.Int("scale", 16, "downscale factor for suite matrices")
		out   = fs.String("o", "", "output file (default stdout)")
		suite = fs.Bool("suite", false, "generate the whole nine-matrix suite")
		dir   = fs.String("dir", ".", "output directory for -suite")
		seed  = fs.Int64("seed", 42, "generator seed (non-suite)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *suite {
		for _, sm := range sim.PaperSuite {
			a := sm.Generate(*scale)
			path := filepath.Join(*dir, fmt.Sprintf("suite_%d_scale%d.mtx", sm.ID, *scale))
			if err := writeTo(path, a); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s (n=%d, nnz=%d)\n", path, a.Rows, a.NNZ())
		}
		return nil
	}

	a, err := build(*gen, *n, *scale, *seed)
	if err != nil {
		return err
	}
	if *out == "" {
		return sparse.WriteMatrixMarket(stdout, a)
	}
	if err := writeTo(*out, a); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s (n=%d, nnz=%d)\n", *out, a.Rows, a.NNZ())
	return nil
}

func build(gen string, n, scale int, seed int64) (*sparse.CSR, error) {
	switch {
	case strings.HasPrefix(gen, "suite:"):
		id, err := strconv.Atoi(strings.TrimPrefix(gen, "suite:"))
		if err != nil {
			return nil, fmt.Errorf("bad suite id in %q", gen)
		}
		sm, ok := sim.SuiteByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown suite matrix %d", id)
		}
		return sm.Generate(scale), nil
	case gen == "poisson2d":
		side := 1
		for side*side < n {
			side++
		}
		return sparse.Poisson2D(side, side), nil
	case gen == "poisson3d":
		side := 1
		for side*side*side < n {
			side++
		}
		return sparse.Poisson3D(side, side, side), nil
	case gen == "laplacian":
		return sparse.RandomGraphLaplacian(n, 6, 0, seed), nil
	case gen == "randomspd":
		return sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.01, DiagShift: 0.5, Seed: seed}), nil
	case gen == "":
		return nil, fmt.Errorf("need -gen or -suite")
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func writeTo(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sparse.WriteMatrixMarket(f, a)
}
