package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesMatrixMarketFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "poisson.mtx")
	var stdout, stderr bytes.Buffer
	args := []string{"-gen", "poisson2d", "-n", "64", "-o", out}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v) failed: %v", args, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "%%MatrixMarket") {
		t.Fatalf("output is not Matrix Market:\n%s", string(data[:40]))
	}
}

func TestRunStdoutWhenNoOutputFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-gen", "laplacian", "-n", "50"}, &stdout, &stderr); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !strings.HasPrefix(stdout.String(), "%%MatrixMarket") {
		t.Fatal("matrix must stream to stdout when -o is empty")
	}
}

func TestRunSuiteMode(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-suite", "-scale", "128", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("suite generation failed: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("suite mode wrote %d files, want 9", len(entries))
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{nil, "need -gen or -suite"},
		{[]string{"-gen", "nope"}, `unknown generator "nope"`},
		{[]string{"-gen", "suite:abc"}, "bad suite id"},
		{[]string{"-gen", "suite:1"}, "unknown suite matrix 1"},
		{[]string{"-what"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(tc.args, &stdout, &stderr); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("run(%v) error = %v, want containing %q", tc.args, err, tc.wantErr)
		}
	}
}
