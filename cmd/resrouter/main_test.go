package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

// boot starts run() in the background and returns the bound base URL and
// the done channel; the context cancel drives the drain path.
func boot(t *testing.T, args []string) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, io.Discard, started) }()
	select {
	case addr := <-started:
		return "http://" + addr.String(), cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("listener did not come up")
	}
	panic("unreachable")
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestRunSpawnsAndRoutes boots a router that spawns its own shard set,
// routes solves through it, inspects /routerz and drains on cancel.
func TestRunSpawnsAndRoutes(t *testing.T) {
	base, cancel, done := boot(t, []string{"-addr", "127.0.0.1:0", "-spawn", "2", "-workers", "1", "-q"})
	defer cancel()

	for _, n := range []string{"64", "100"} {
		resp, raw := postJSON(t, base+"/v1/solve", `{"matrix":{"gen":"poisson2d","n":`+n+`},"seed":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%s: status %d: %s", n, resp.StatusCode, raw)
		}
		var sr server.SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Result.Converged != 1 || sr.Result.ResidualHash == "" || sr.Result.Shard == "" {
			t.Errorf("n=%s: record converged=%d hash=%q shard=%q",
				n, sr.Result.Converged, sr.Result.ResidualHash, sr.Result.Shard)
		}
		if shard := resp.Header.Get("X-Resilient-Shard"); shard != sr.Result.Shard {
			t.Errorf("n=%s: header shard %q != record shard %q", n, shard, sr.Result.Shard)
		}
	}

	rz, err := http.Get(base + "/routerz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	var status router.RouterzResponse
	if err := json.NewDecoder(rz.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Schema != router.SchemaVersion || len(status.Shards) != 2 || status.Routed != 2 {
		t.Errorf("routerz %+v: want schema %d, 2 shards, 2 routed", status, router.SchemaVersion)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
}

// TestRunAttachesTopology mixes an attached external shard with a
// spawned one through a topology file.
func TestRunAttachesTopology(t *testing.T) {
	ext := server.New(server.Config{Workers: 1, ShardLabel: "external"})
	ts := httptest.NewServer(ext.Handler())
	t.Cleanup(func() {
		ts.Close()
		ext.Shutdown()
	})

	topo := filepath.Join(t.TempDir(), "topo.json")
	blob, _ := json.Marshal(router.Topology{
		Schema: router.TopologySchemaVersion,
		Shards: []router.Shard{
			{Name: "external", Addr: ts.URL},
			{Name: "local"},
		},
	})
	if err := os.WriteFile(topo, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	base, cancel, done := boot(t, []string{"-addr", "127.0.0.1:0", "-topology", topo, "-workers", "1", "-q"})
	defer cancel()

	// Drive enough distinct matrices that both shards serve something.
	served := map[string]bool{}
	for n := 16; n <= 56; n += 4 {
		resp, raw := postJSON(t, base+"/v1/solve",
			`{"matrix":{"gen":"tridiag","n":`+jsonInt(n)+`},"seed":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%d: status %d: %s", n, resp.StatusCode, raw)
		}
		served[resp.Header.Get("X-Resilient-Shard")] = true
	}
	if !served["external"] || !served["local"] {
		t.Errorf("shard coverage %v, want both external and local", served)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
}

func jsonInt(n int) string {
	raw, _ := json.Marshal(n)
	return string(raw)
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-q"}, // no shards at all
		{"-topology", "/nonexistent/topo.json"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}

	// A malformed topology must fail validation, not boot.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"schema":1,"shards":[{"name":"a","addr":"not a url"}]}`), 0o644)
	if err := run(context.Background(), []string{"-topology", bad}, io.Discard, nil); err == nil {
		t.Error("malformed topology accepted")
	}
}

func TestRunRejectsBusyAddress(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := run(context.Background(), []string{"-addr", ln.Addr().String(), "-spawn", "1", "-q"}, io.Discard, nil); err == nil {
		t.Fatal("expected a listen error on a busy address")
	}
}

// TestRunChaosPlanKeepsAnswersClean is the tentpole gate in miniature:
// the same campaign, replayed through a seeded fault plan (resets,
// truncations, bit flips, 503 storms), must produce solve results
// bit-identical to the fault-free baseline — every corruption detected
// and retried inside the router, zero corrupt bytes relayed — and the
// injection trace must reproduce exactly under the same seed.
func TestRunChaosPlanKeepsAnswersClean(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	planJSON := `{"schema":1,"seed":42,"p_reset":0.1,"p_truncate":0.1,"p_bitflip":0.25,"p_503":0.05,"p_latency":0.1,"latency_ms":1}`
	if err := os.WriteFile(plan, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	chaosArgs := []string{"-addr", "127.0.0.1:0", "-spawn", "2", "-workers", "1", "-q",
		"-chaos-plan", plan, "-retry-budget", "8", "-retry-backoff", "1ms"}

	baseClean, cancelClean, _ := boot(t, []string{"-addr", "127.0.0.1:0", "-spawn", "2", "-workers", "1", "-q"})
	defer cancelClean()
	baseChaos, cancelChaos, _ := boot(t, chaosArgs)
	defer cancelChaos()

	reqs := make([]string, 0, 12)
	for _, n := range []int{32, 48, 64, 100} {
		body := `{"matrix":{"gen":"poisson2d","n":` + strconv.Itoa(n) + `},"seed":5}`
		reqs = append(reqs, body, body, body) // repeats draw fresh per-attempt fates
	}

	hashOf := func(base, body string) string {
		resp, raw := postJSON(t, base+"/v1/solve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d under %s: %s", resp.StatusCode, base, raw)
		}
		var sr server.SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Result.ResidualHash == "" {
			t.Fatal("empty residual hash")
		}
		return sr.Result.ResidualHash
	}
	for i, body := range reqs {
		clean := hashOf(baseClean, body)
		chaotic := hashOf(baseChaos, body)
		if clean != chaotic {
			t.Errorf("request %d: chaos result %s != fault-free %s", i, chaotic, clean)
		}
	}

	routerz := func(base string) router.RouterzResponse {
		rz, err := http.Get(base + "/routerz")
		if err != nil {
			t.Fatal(err)
		}
		defer rz.Body.Close()
		var status router.RouterzResponse
		if err := json.NewDecoder(rz.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		return status
	}
	status := routerz(baseChaos)
	if status.Chaos == nil {
		t.Fatal("no chaos section on /routerz with -chaos-plan")
	}
	if status.Chaos.BitFlips == 0 || status.Chaos.Resets == 0 {
		t.Errorf("plan injected no resets/bit flips over %d requests: %+v", len(reqs), status.Chaos)
	}
	// Detection must be total: every injected flip (and only genuinely
	// corrupt bodies) shows up as a caught corrupt response.
	if status.Integrity.CorruptResponses == 0 {
		t.Errorf("bit flips injected but none detected: %+v", status.Integrity)
	}
	if status.Integrity.BudgetExhausted != 0 {
		t.Errorf("retry budget exhausted %d times inside a generous budget", status.Integrity.BudgetExhausted)
	}
	if status.Integrity.DigestVerified == 0 {
		t.Error("no digest-verified responses counted")
	}

	// Same seed, same sequence → same injection trace, on a fresh router
	// with different shard ports: determinism survives redeployment.
	baseChaos2, cancelChaos2, _ := boot(t, chaosArgs)
	defer cancelChaos2()
	for _, body := range reqs {
		hashOf(baseChaos2, body)
	}
	status2 := routerz(baseChaos2)
	if status2.Chaos.TraceHash != status.Chaos.TraceHash {
		t.Errorf("trace diverged across runs of the same plan: %s vs %s",
			status2.Chaos.TraceHash, status.Chaos.TraceHash)
	}
	if status2.Chaos.BitFlips != status.Chaos.BitFlips || status2.Chaos.Resets != status.Chaos.Resets {
		t.Errorf("fault counts diverged: %+v vs %+v", status2.Chaos, status.Chaos)
	}
}
