package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

// boot starts run() in the background and returns the bound base URL and
// the done channel; the context cancel drives the drain path.
func boot(t *testing.T, args []string) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, io.Discard, started) }()
	select {
	case addr := <-started:
		return "http://" + addr.String(), cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("listener did not come up")
	}
	panic("unreachable")
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestRunSpawnsAndRoutes boots a router that spawns its own shard set,
// routes solves through it, inspects /routerz and drains on cancel.
func TestRunSpawnsAndRoutes(t *testing.T) {
	base, cancel, done := boot(t, []string{"-addr", "127.0.0.1:0", "-spawn", "2", "-workers", "1", "-q"})
	defer cancel()

	for _, n := range []string{"64", "100"} {
		resp, raw := postJSON(t, base+"/v1/solve", `{"matrix":{"gen":"poisson2d","n":`+n+`},"seed":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%s: status %d: %s", n, resp.StatusCode, raw)
		}
		var sr server.SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Result.Converged != 1 || sr.Result.ResidualHash == "" || sr.Result.Shard == "" {
			t.Errorf("n=%s: record converged=%d hash=%q shard=%q",
				n, sr.Result.Converged, sr.Result.ResidualHash, sr.Result.Shard)
		}
		if shard := resp.Header.Get("X-Resilient-Shard"); shard != sr.Result.Shard {
			t.Errorf("n=%s: header shard %q != record shard %q", n, shard, sr.Result.Shard)
		}
	}

	rz, err := http.Get(base + "/routerz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	var status router.RouterzResponse
	if err := json.NewDecoder(rz.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Schema != router.SchemaVersion || len(status.Shards) != 2 || status.Routed != 2 {
		t.Errorf("routerz %+v: want schema %d, 2 shards, 2 routed", status, router.SchemaVersion)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
}

// TestRunAttachesTopology mixes an attached external shard with a
// spawned one through a topology file.
func TestRunAttachesTopology(t *testing.T) {
	ext := server.New(server.Config{Workers: 1, ShardLabel: "external"})
	ts := httptest.NewServer(ext.Handler())
	t.Cleanup(func() {
		ts.Close()
		ext.Shutdown()
	})

	topo := filepath.Join(t.TempDir(), "topo.json")
	blob, _ := json.Marshal(router.Topology{
		Schema: router.TopologySchemaVersion,
		Shards: []router.Shard{
			{Name: "external", Addr: ts.URL},
			{Name: "local"},
		},
	})
	if err := os.WriteFile(topo, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	base, cancel, done := boot(t, []string{"-addr", "127.0.0.1:0", "-topology", topo, "-workers", "1", "-q"})
	defer cancel()

	// Drive enough distinct matrices that both shards serve something.
	served := map[string]bool{}
	for n := 16; n <= 56; n += 4 {
		resp, raw := postJSON(t, base+"/v1/solve",
			`{"matrix":{"gen":"tridiag","n":`+jsonInt(n)+`},"seed":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%d: status %d: %s", n, resp.StatusCode, raw)
		}
		served[resp.Header.Get("X-Resilient-Shard")] = true
	}
	if !served["external"] || !served["local"] {
		t.Errorf("shard coverage %v, want both external and local", served)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
}

func jsonInt(n int) string {
	raw, _ := json.Marshal(n)
	return string(raw)
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-q"}, // no shards at all
		{"-topology", "/nonexistent/topo.json"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}

	// A malformed topology must fail validation, not boot.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"schema":1,"shards":[{"name":"a","addr":"not a url"}]}`), 0o644)
	if err := run(context.Background(), []string{"-topology", bad}, io.Discard, nil); err == nil {
		t.Error("malformed topology accepted")
	}
}

func TestRunRejectsBusyAddress(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := run(context.Background(), []string{"-addr", ln.Addr().String(), "-spawn", "1", "-q"}, io.Discard, nil); err == nil {
		t.Fatal("expected a listen error on a busy address")
	}
}
