package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/supervisor"
)

// localRuntime materialises shards as in-process servers: the laptop
// deployment. Each Start builds a full internal/server instance on an
// ephemeral port; Stop drains it like a resilientd receiving SIGTERM.
type localRuntime struct {
	workers int

	mu     sync.Mutex
	shards map[string]*localShard
}

type localShard struct {
	srv *server.Server
	hs  *http.Server
}

func newLocalRuntime(workers int) *localRuntime {
	return &localRuntime{workers: workers, shards: make(map[string]*localShard)}
}

func (l *localRuntime) Start(name string) (string, error) {
	srv := server.New(server.Config{Workers: l.workers, ShardLabel: name})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Shutdown()
		return "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	l.mu.Lock()
	l.shards[name] = &localShard{srv: srv, hs: hs}
	l.mu.Unlock()
	return "http://" + ln.Addr().String(), nil
}

func (l *localRuntime) Stop(name string) error {
	l.mu.Lock()
	sp := l.shards[name]
	delete(l.shards, name)
	l.mu.Unlock()
	if sp == nil {
		return nil
	}
	sp.srv.StartDraining()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = sp.hs.Shutdown(sctx)
	sp.srv.Shutdown()
	return nil
}

// procRuntime materialises shards as supervised resilientd child
// processes: the -supervise watchdog. A crashed child restarts with
// capped exponential backoff on a stable port — the ring address never
// changes — and rejoins traffic when the router's health probes see it
// answer again, the same re-admission path as any ejected shard.
type procRuntime struct {
	cfg procConfig

	// restarts counts child relaunches after a crash or failed start,
	// exported into the router's /metrics page via Config.Observe.
	restarts atomic.Int64

	mu       sync.Mutex
	children map[string]*procShard
}

type procConfig struct {
	bin        string
	workers    int
	backoff    time.Duration
	maxBackoff time.Duration
	// maxRestarts caps consecutive crash-loop restarts per child
	// (0 = unlimited); see supervisor.Config.MaxRestarts.
	maxRestarts int
	// healthWait bounds how long Start waits for a fresh child's
	// /v1/healthz (0 = 15s).
	healthWait time.Duration
	// log receives the structured lifecycle lines (nil discards them).
	log *slog.Logger
}

type procShard struct {
	child *supervisor.Child
	addr  string
}

func newProcRuntime(cfg procConfig) *procRuntime {
	return &procRuntime{cfg: cfg, children: make(map[string]*procShard)}
}

func (p *procRuntime) Start(name string) (string, error) {
	// Reserve a port once and keep it across restarts: the ring address
	// must stay stable while the supervisor cycles the process behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	hostport := ln.Addr().String()
	ln.Close()

	child := supervisor.Supervise(name, func() *exec.Cmd {
		return exec.Command(p.cfg.bin,
			"-addr", hostport,
			"-shard", name,
			"-workers", strconv.Itoa(p.cfg.workers),
			"-q",
		)
	}, supervisor.Config{
		Backoff:     p.cfg.backoff,
		MaxBackoff:  p.cfg.maxBackoff,
		MaxRestarts: p.cfg.maxRestarts,
		OnEvent:     p.logEvent,
	})

	addr := "http://" + hostport
	healthWait := p.cfg.healthWait
	if healthWait <= 0 {
		healthWait = 15 * time.Second
	}
	if err := waitHealthy(addr, healthWait); err != nil {
		child.Stop()
		return "", fmt.Errorf("shard %q never became healthy: %w", name, err)
	}
	p.mu.Lock()
	p.children[name] = &procShard{child: child, addr: addr}
	p.mu.Unlock()
	return addr, nil
}

func (p *procRuntime) Stop(name string) error {
	p.mu.Lock()
	ps := p.children[name]
	delete(p.children, name)
	p.mu.Unlock()
	if ps == nil {
		return nil
	}
	ps.child.Stop()
	return nil
}

// KillByAddr SIGKILLs the supervised child listening on hostport
// ("127.0.0.1:9101"), reporting whether one was found alive. This is the
// chaos injector's shard-kill hook: the supervisor observes the death
// like any crash and restarts the child on its stable port.
func (p *procRuntime) KillByAddr(hostport string) bool {
	p.mu.Lock()
	var victim *procShard
	for _, ps := range p.children {
		if ps.addr == "http://"+hostport || ps.addr == "https://"+hostport {
			victim = ps
			break
		}
	}
	p.mu.Unlock()
	if victim == nil {
		return false
	}
	return victim.child.Kill()
}

func (p *procRuntime) logEvent(ev supervisor.Event) {
	// Every crash or failed start schedules a relaunch (until the budget
	// is exhausted): that is the restart tally operators alert on.
	if ev.Kind == "exit" || ev.Kind == "start-error" {
		p.restarts.Add(1)
	}
	if p.cfg.log != nil {
		supervisor.LogEvents(p.cfg.log)(ev)
	}
}

// waitHealthy polls the shard's /v1/healthz until it answers 200 or the
// deadline passes, so a freshly started child is accepting connections
// before the router puts keys on it.
func waitHealthy(base string, within time.Duration) error {
	deadline := time.Now().Add(within)
	client := &http.Client{Timeout: time.Second}
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz answered %s", resp.Status)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return lastErr
}
