package main

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/router"
)

func writeTopology(t *testing.T, path string, names ...string) {
	t.Helper()
	topo := router.Topology{Schema: router.TopologySchemaVersion}
	for _, n := range names {
		topo.Shards = append(topo.Shards, router.Shard{Name: n})
	}
	blob, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func routerzShards(t *testing.T, base string) []api.ShardStatus {
	t.Helper()
	resp, err := http.Get(base + "/routerz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz api.RouterzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	return rz.Shards
}

func waitForShardSet(t *testing.T, base string, want ...string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var got []string
	for time.Now().Before(deadline) {
		got = got[:0]
		for _, s := range routerzShards(t, base) {
			got = append(got, s.Name)
		}
		if strings.Join(got, ",") == strings.Join(want, ",") {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("shard set %v, want %v", got, want)
}

// TestTopologyMtimeReload boots with a fast mtime watch and grows, then
// shrinks, the shard set purely by rewriting the topology file.
func TestTopologyMtimeReload(t *testing.T) {
	topo := filepath.Join(t.TempDir(), "topo.json")
	writeTopology(t, topo, "a", "b")
	base, cancel, _ := boot(t, []string{
		"-addr", "127.0.0.1:0", "-topology", topo, "-topology-watch", "25ms", "-workers", "1", "-q"})
	defer cancel()

	waitForShardSet(t, base, "a", "b")
	writeTopology(t, topo, "a", "b", "c")
	waitForShardSet(t, base, "a", "b", "c")

	// The grown ring serves — including keys that now live on c.
	for n := 16; n <= 48; n += 4 {
		resp, raw := postJSON(t, base+"/v1/solve", `{"matrix":{"gen":"tridiag","n":`+jsonInt(n)+`},"seed":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%d after grow: status %d: %s", n, resp.StatusCode, raw)
		}
	}

	writeTopology(t, topo, "a", "b")
	waitForShardSet(t, base, "a", "b")
}

// TestSIGHUPReload disables the mtime watch and reloads by signal only.
func TestSIGHUPReload(t *testing.T) {
	topo := filepath.Join(t.TempDir(), "topo.json")
	writeTopology(t, topo, "a", "b")
	base, cancel, _ := boot(t, []string{
		"-addr", "127.0.0.1:0", "-topology", topo, "-topology-watch", "0", "-workers", "1", "-q"})
	defer cancel()
	waitForShardSet(t, base, "a", "b")

	// Rewriting the file alone must do nothing without the watch.
	writeTopology(t, topo, "a", "b", "c")
	time.Sleep(150 * time.Millisecond)
	if got := routerzShards(t, base); len(got) != 2 {
		t.Fatalf("shard set grew to %d without SIGHUP", len(got))
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitForShardSet(t, base, "a", "b", "c")
}

// TestMalformedRewriteKeepsPreviousRing rewrites the watched topology to
// garbage: the reload is rejected, the old ring keeps serving, and the
// watcher stays alive to apply the next good rewrite.
func TestMalformedRewriteKeepsPreviousRing(t *testing.T) {
	topo := filepath.Join(t.TempDir(), "topo.json")
	writeTopology(t, topo, "a", "b")
	base, cancel, _ := boot(t, []string{
		"-addr", "127.0.0.1:0", "-topology", topo, "-topology-watch", "25ms", "-workers", "1", "-q"})
	defer cancel()
	waitForShardSet(t, base, "a", "b")

	for _, garbage := range []string{
		"{not json",
		`{"schema":99,"shards":[{"name":"a"}]}`,
		`{"schema":1,"shards":[{"name":"a"},{"name":"a"}]}`,
	} {
		if err := os.WriteFile(topo, []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond) // several watch ticks
		if got := routerzShards(t, base); len(got) != 2 {
			t.Fatalf("malformed rewrite %q changed the shard set to %d", garbage, len(got))
		}
		resp, raw := postJSON(t, base+"/v1/solve", `{"matrix":{"gen":"poisson2d","n":36},"seed":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve after malformed rewrite: status %d: %s", resp.StatusCode, raw)
		}
	}

	// The watcher survived all of it: a good rewrite still applies.
	writeTopology(t, topo, "a", "b", "c")
	waitForShardSet(t, base, "a", "b", "c")
}

// findShardPID scans /proc for a supervised child of bin serving the
// named shard and returns its pid (0 if none).
func findShardPID(t *testing.T, bin, shard string) int {
	t.Helper()
	entries, err := os.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		raw, err := os.ReadFile(filepath.Join("/proc", e.Name(), "cmdline"))
		if err != nil {
			continue
		}
		argv := strings.Split(string(raw), "\x00")
		if len(argv) == 0 || argv[0] != bin {
			continue
		}
		for i, a := range argv {
			if a == "-shard" && i+1 < len(argv) && argv[i+1] == shard {
				return pid
			}
		}
	}
	return 0
}

// TestSuperviseRestartsKilledShard is the watchdog end-to-end: real
// resilientd children under -supervise, one killed with SIGKILL, a fresh
// process comes back on the same port, is re-admitted by the health
// probes, and serves the same keys with bit-identical residual hashes.
func TestSuperviseRestartsKilledShard(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real child processes")
	}
	bin := filepath.Join(t.TempDir(), "resilientd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/resilientd").CombinedOutput(); err != nil {
		t.Fatalf("building resilientd: %v\n%s", err, out)
	}

	base, cancel, done := boot(t, []string{
		"-addr", "127.0.0.1:0", "-spawn", "2", "-supervise", "-shard-bin", bin,
		"-workers", "1", "-restart-backoff", "50ms", "-restart-max", "250ms",
		"-probe-interval", "100ms", "-q"})
	defer cancel()

	// Baseline: owners and residual hashes per matrix.
	type record struct{ owner, hash string }
	baseline := map[int]record{}
	solve := func(n int) (int, record) {
		resp, raw := postJSON(t, base+"/v1/solve", `{"matrix":{"gen":"tridiag","n":`+jsonInt(n)+`},"seed":5}`)
		var sr api.SolveResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &sr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, record{owner: resp.Header.Get("X-Resilient-Shard"), hash: sr.Result.ResidualHash}
	}
	sizes := []int{16, 20, 24, 28, 32, 36, 40, 44}
	for _, n := range sizes {
		code, rec := solve(n)
		if code != http.StatusOK {
			t.Fatalf("baseline n=%d: status %d", n, code)
		}
		baseline[n] = rec
	}

	victim := baseline[sizes[0]].owner
	pid := findShardPID(t, bin, victim)
	if pid == 0 {
		t.Fatalf("no child process found for shard %s", victim)
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	// The supervisor must bring up a replacement process (new pid, same
	// shard name, same port) and the probes re-admit it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if np := findShardPID(t, bin, victim); np != 0 && np != pid {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("killed shard never restarted")
		}
		time.Sleep(25 * time.Millisecond)
	}
	for {
		code, rec := solve(sizes[0])
		if code == http.StatusOK && rec.owner == victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard %s never took its keys back (last: status %d owner %q)", victim, code, rec.owner)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Determinism across the whole episode: every key answers with its
	// baseline hash, and the victim's keys are served by the victim again.
	for _, n := range sizes {
		code, rec := solve(n)
		if code != http.StatusOK {
			t.Errorf("n=%d after restart: status %d", n, code)
			continue
		}
		if rec.hash != baseline[n].hash {
			t.Errorf("n=%d: hash %s after restart, want %s", n, rec.hash, baseline[n].hash)
		}
		if rec.owner != baseline[n].owner {
			t.Errorf("n=%d: owner %s after restart, want %s", n, rec.owner, baseline[n].owner)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
	// Drain stops the supervised children for good.
	if p := findShardPID(t, bin, victim); p != 0 {
		t.Errorf("shard %s (pid %d) still running after drain", victim, p)
	}
}
