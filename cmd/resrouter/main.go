// Command resrouter is the sharded solve tier's front door: a
// consistent-hash router over N resilientd shards, keyed on the same
// per-matrix cache identity the shards key their artifact caches on, so
// every matrix stays warm on exactly one shard.
//
//	resrouter -addr 127.0.0.1:8900 -topology shards.json
//	resrouter -addr 127.0.0.1:8900 -spawn 3
//
// The topology file lists the shard set (see internal/router.Topology);
// entries with an empty addr — and every shard under -spawn — are
// spawned in-process on ephemeral ports, so a laptop can run a whole
// sharded deployment from one command. POST /v1/solve routes by matrix
// identity with health-checked failover to the next ring replica; GET
// /routerz exposes the shard map, key distribution and per-shard
// inflight/latency stats; GET /v1/healthz reports the router itself.
// SIGINT/SIGTERM drain gracefully: the router refuses new solves,
// in-flight forwards complete, then spawned shards drain in turn.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "resrouter: %v\n", err)
		os.Exit(1)
	}
}

// spawnedShard is one in-process resilientd-equivalent: the service, its
// listener-bound http.Server and the bound address.
type spawnedShard struct {
	name string
	srv  *server.Server
	hs   *http.Server
	addr string
}

// run starts the router (and any spawned shards) and blocks until ctx is
// cancelled or the listener fails. When started is non-nil it receives
// the bound address once the listener is up.
func run(ctx context.Context, args []string, stderr io.Writer, started chan<- net.Addr) error {
	fs := flag.NewFlagSet("resrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8900", "listen address")
		topoPath      = fs.String("topology", "", "JSON topology file naming the shard set")
		spawn         = fs.Int("spawn", 0, "spawn this many in-process shards (instead of, or in addition to, -topology)")
		workers       = fs.Int("workers", 0, "kernel pool size per spawned shard (resilientd -workers semantics)")
		vnodes        = fs.Int("vnodes", router.DefaultVnodes, "virtual nodes per shard on the hash ring")
		replicas      = fs.Int("replicas", 2, "distinct ring replicas a request may try (owner + failovers)")
		probeInterval = fs.Duration("probe-interval", 2*time.Second, "active health-check period")
		probeTimeout  = fs.Duration("probe-timeout", time.Second, "per-probe deadline")
		failThreshold = fs.Int("fail-threshold", 3, "consecutive failures that eject a shard")
		reqTimeout    = fs.Duration("timeout", 2*time.Minute, "forwarded-request deadline when the request names none")
		retryBody     = fs.Int64("retry-body-bytes", 0, "largest request body buffered for failover resends (0 = 8 MiB, negative = unbounded); larger requests get a single attempt")
		quiet         = fs.Bool("q", false, "suppress startup and drain logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var topo router.Topology
	if *topoPath != "" {
		var err error
		if topo, err = router.LoadTopology(*topoPath); err != nil {
			return err
		}
	}
	for i := 0; i < *spawn; i++ {
		topo.Shards = append(topo.Shards, router.Shard{Name: fmt.Sprintf("spawn%d", i)})
	}
	if len(topo.Shards) == 0 {
		return fmt.Errorf("no shards: provide -topology and/or -spawn")
	}

	// Materialise the shard set: attach where an addr is given, spawn
	// in-process where it is not.
	var spawned []*spawnedShard
	drainSpawned := func() {
		for _, sp := range spawned {
			sp.srv.StartDraining()
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = sp.hs.Shutdown(sctx)
			cancel()
			sp.srv.Shutdown()
		}
	}
	shards := make([]router.Shard, 0, len(topo.Shards))
	for _, sh := range topo.Shards {
		if sh.Addr != "" {
			shards = append(shards, sh)
			continue
		}
		srv := server.New(server.Config{Workers: *workers, ShardLabel: sh.Name})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown()
			drainSpawned()
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		sp := &spawnedShard{name: sh.Name, srv: srv, hs: hs, addr: "http://" + ln.Addr().String()}
		spawned = append(spawned, sp)
		shards = append(shards, router.Shard{Name: sh.Name, Addr: sp.addr})
	}

	rt, err := router.New(router.Config{
		Vnodes:         *vnodes,
		Replicas:       *replicas,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		RequestTimeout: *reqTimeout,
		RetryBodyBytes: *retryBody,
	}, shards)
	if err != nil {
		drainSpawned()
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		rt.Shutdown()
		drainSpawned()
		return err
	}
	if started != nil {
		started <- ln.Addr()
	}
	if !*quiet {
		fmt.Fprintf(stderr, "resrouter: listening on %s, %d shards:\n", ln.Addr(), len(shards))
		for _, sh := range shards {
			mode := "attached"
			for _, sp := range spawned {
				if sp.name == sh.Name {
					mode = "spawned"
				}
			}
			fmt.Fprintf(stderr, "resrouter:   %-12s %s (%s)\n", sh.Name, sh.Addr, mode)
		}
	}

	hs := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		rt.Shutdown()
		drainSpawned()
		return err
	case <-ctx.Done():
	}
	if !*quiet {
		fmt.Fprintln(stderr, "resrouter: draining")
	}
	// Drain outside-in: refuse new solves at the router, stop its
	// listener so in-flight forwards deliver, then drain the router's
	// forwards and finally the spawned shards' own queues.
	rt.StartDraining()
	sctx, cancel := context.WithTimeout(context.Background(), *reqTimeout)
	defer cancel()
	httpErr := hs.Shutdown(sctx)
	rt.Shutdown()
	drainSpawned()
	if !*quiet {
		fmt.Fprintln(stderr, "resrouter: drained")
	}
	return httpErr
}
