// Command resrouter is the sharded solve tier's front door: a
// consistent-hash router over N resilientd shards, keyed on the same
// per-matrix cache identity the shards key their artifact caches on, so
// every matrix stays warm on exactly one shard.
//
//	resrouter -addr 127.0.0.1:8900 -topology shards.json
//	resrouter -addr 127.0.0.1:8900 -spawn 3
//	resrouter -addr 127.0.0.1:8900 -spawn 3 -supervise -shard-bin ./bin/resilientd
//
// The topology file lists the shard set (see internal/router.Topology);
// entries with an empty addr — and every shard under -spawn — are
// materialised by the shard runtime: in-process servers by default, or
// supervised resilientd child processes under -supervise (crashed
// children restart with capped exponential backoff and re-admit through
// the router's health probes). The topology is live: SIGHUP — and a
// polling mtime watch (-topology-watch) — reloads the file and applies it
// to the ring with minimal key movement; a malformed file is rejected and
// the previous ring keeps serving. With -admin-token the token-gated
// /v1/admin surface drains, adds and removes shards at runtime.
//
// POST /v1/solve routes by matrix identity with health-checked failover
// to the next ring replica; GET /routerz exposes the shard map, key
// distribution and per-shard inflight/latency stats; GET /v1/healthz
// reports the router itself. SIGINT/SIGTERM drain gracefully: the router
// refuses new solves, in-flight forwards complete, then managed shards
// drain in turn.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/router"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "resrouter: %v\n", err)
		os.Exit(1)
	}
}

// run starts the router (and any runtime-managed shards) and blocks until
// ctx is cancelled or the listener fails. When started is non-nil it
// receives the bound address once the listener is up.
func run(ctx context.Context, args []string, stderr io.Writer, started chan<- net.Addr) error {
	fs := flag.NewFlagSet("resrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8900", "listen address")
		topoPath      = fs.String("topology", "", "JSON topology file naming the shard set")
		topoWatch     = fs.Duration("topology-watch", 2*time.Second, "poll the topology file for mtime changes this often and reload on change (0 = SIGHUP only)")
		spawn         = fs.Int("spawn", 0, "materialise this many shards through the runtime (instead of, or in addition to, -topology)")
		supervise     = fs.Bool("supervise", false, "materialise address-less shards as supervised resilientd child processes instead of in-process servers")
		shardBin      = fs.String("shard-bin", "resilientd", "resilientd binary for -supervise (looked up in PATH unless a path is given)")
		restartBase   = fs.Duration("restart-backoff", 250*time.Millisecond, "first restart delay for a crashed supervised shard (doubles per crash)")
		restartMax    = fs.Duration("restart-max", 5*time.Second, "restart-delay cap for a crash-looping supervised shard")
		restartLimit  = fs.Int("restart-limit", 0, "consecutive crash-loop restarts before a supervised shard is given up on (0 = unlimited)")
		adminToken    = fs.String("admin-token", "", "bearer token enabling the /v1/admin control plane (empty = disabled)")
		workers       = fs.Int("workers", 0, "kernel pool size per managed shard (resilientd -workers semantics)")
		vnodes        = fs.Int("vnodes", router.DefaultVnodes, "virtual nodes per shard on the hash ring")
		replicas      = fs.Int("replicas", 2, "distinct ring replicas a request may try (owner + failovers)")
		probeInterval = fs.Duration("probe-interval", 2*time.Second, "active health-check period")
		probeTimeout  = fs.Duration("probe-timeout", time.Second, "per-probe deadline")
		failThreshold = fs.Int("fail-threshold", 3, "consecutive failures that eject a shard")
		reqTimeout    = fs.Duration("timeout", 2*time.Minute, "forwarded-request deadline when the request names none")
		retryBody     = fs.Int64("retry-body-bytes", 0, "largest request body buffered for failover resends (0 = 8 MiB, negative = unbounded); larger requests get a single attempt")
		retryBudget   = fs.Int("retry-budget", 4, "per-request attempt ceiling across ring candidates (first try included)")
		retryBackoff  = fs.Duration("retry-backoff", 25*time.Millisecond, "base delay before the second attempt (doubles per attempt, ±50% jitter; a shard retry_after_ms hint overrides when longer)")
		chaosPlan     = fs.String("chaos-plan", "", "seeded fault-injection plan (JSON) applied to shard-bound solve traffic; /routerz grows a chaos section")
		hedge         = fs.Bool("hedge", false, "hedge idempotent solves: arm a duplicate on the next ring replica after a tail-latency delay, first verified answer wins")
		hedgeDelay    = fs.Duration("hedge-delay", 30*time.Millisecond, "hedge arm delay until a shard has a P99 estimate of its own")
		hedgeMax      = fs.Duration("hedge-max-delay", 2*time.Second, "cap on the P99-derived hedge arm delay")
		traceRing     = fs.Int("trace-ring", 0, "completed traces retained for /v1/tracez (0 = default)")
		logFormat     = fs.String("log-format", "text", "log line format: text or json")
		quiet         = fs.Bool("q", false, "log warnings and errors only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.NewLogger(stderr, *logFormat, *quiet)

	// desiredTopology is the reload unit: the topology file (when given)
	// plus the -spawn synthetic shards, revalidated as a whole.
	desiredTopology := func() (router.Topology, error) {
		var topo router.Topology
		if *topoPath != "" {
			var err error
			if topo, err = router.LoadTopology(*topoPath); err != nil {
				return topo, err
			}
		}
		for i := 0; i < *spawn; i++ {
			topo.Shards = append(topo.Shards, router.Shard{Name: fmt.Sprintf("spawn%d", i)})
		}
		if len(topo.Shards) == 0 {
			return topo, fmt.Errorf("no shards: provide -topology and/or -spawn")
		}
		if err := topo.Validate(); err != nil {
			return topo, err
		}
		return topo, nil
	}
	topo, err := desiredTopology()
	if err != nil {
		return err
	}

	var runtime router.ShardRuntime
	var procs *procRuntime
	if *supervise {
		procs = newProcRuntime(procConfig{
			bin:         *shardBin,
			workers:     *workers,
			backoff:     *restartBase,
			maxBackoff:  *restartMax,
			maxRestarts: *restartLimit,
			log:         logger,
		})
		runtime = procs
	} else {
		runtime = newLocalRuntime(*workers)
	}

	cfg := router.Config{
		Vnodes:         *vnodes,
		Replicas:       *replicas,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		RequestTimeout: *reqTimeout,
		RetryBodyBytes: *retryBody,
		RetryBudget:    *retryBudget,
		RetryBackoff:   *retryBackoff,
		AdminToken:     *adminToken,
		Runtime:        runtime,
		HedgeEnabled:   *hedge,
		HedgeDelay:     *hedgeDelay,
		HedgeMaxDelay:  *hedgeMax,
		TraceRing:      *traceRing,
		Logger:         logger,
	}
	if procs != nil {
		// The watchdog's restart tally joins the router's /metrics page: a
		// scrape sees crash-loop churn next to the routing counters.
		cfg.Observe = func(m *obs.Registry) {
			m.CounterFunc("resilient_router_supervisor_restarts_total",
				"Supervised shard relaunches after a crash or failed start.",
				func() float64 { return float64(procs.restarts.Load()) })
		}
	}
	if *hedge {
		logger.Info("tail-latency hedging enabled", "base_delay", hedgeDelay.String(), "max_delay", hedgeMax.String())
	}
	if *chaosPlan != "" {
		plan, err := chaos.LoadPlan(*chaosPlan)
		if err != nil {
			return err
		}
		var opts []chaos.Option
		if procs != nil {
			// Kill faults SIGKILL the supervised child behind the target
			// address; the watchdog restarts it on its stable port.
			opts = append(opts, chaos.WithKillFunc(procs.KillByAddr))
		}
		inj := chaos.New(plan, nil, opts...)
		cfg.Transport = inj
		cfg.ChaosStats = inj.Stats
		logger.Info("chaos fault injection enabled", "plan", *chaosPlan, "seed", plan.Seed)
	}
	rt, err := router.New(cfg, topo.Shards)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		rt.Shutdown()
		return err
	}
	if started != nil {
		started <- ln.Addr()
	}
	logger.Info("listening", "addr", ln.Addr().String(), "shards", len(topo.Shards))
	for _, sh := range rt.CurrentTopology().Shards {
		logger.Info("shard", "name", sh.Name, "addr", sh.Addr, "state", sh.State)
	}
	if *adminToken != "" {
		logger.Info("admin API enabled", "path", "/v1/admin")
	}

	// Live topology: SIGHUP and the mtime watch both funnel into one
	// reload path. A reload that fails to parse or validate is rejected
	// whole — the previous ring keeps serving.
	sighup := make(chan os.Signal, 1)
	signal.Notify(sighup, syscall.SIGHUP)
	defer signal.Stop(sighup)
	reload := func(reason string) {
		next, err := desiredTopology()
		if err != nil {
			logger.Warn("topology reload rejected, keeping previous ring", "reason", reason, "error", err.Error())
			return
		}
		rep, err := rt.Apply(next)
		if err != nil {
			logger.Warn("topology reload rejected, keeping previous ring", "reason", reason, "error", err.Error())
			return
		}
		if rep.Changed() {
			logger.Info("topology reload applied", "reason", reason, "report", rep.String())
		} else {
			logger.Info("topology reload: no change", "reason", reason)
		}
	}
	watcherDone := make(chan struct{})
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go func() {
		defer close(watcherDone)
		var tick <-chan time.Time
		if *topoWatch > 0 && *topoPath != "" {
			t := time.NewTicker(*topoWatch)
			defer t.Stop()
			tick = t.C
		}
		lastMod := time.Time{}
		if fi, err := os.Stat(*topoPath); err == nil {
			lastMod = fi.ModTime()
		}
		for {
			select {
			case <-watchCtx.Done():
				return
			case <-sighup:
				reload("SIGHUP")
			case <-tick:
				fi, err := os.Stat(*topoPath)
				if err != nil {
					// A mid-rewrite window (move-over-rename) or a deleted
					// file: keep serving the current ring, try again next
					// tick.
					continue
				}
				if mt := fi.ModTime(); !mt.Equal(lastMod) {
					lastMod = mt
					reload("mtime")
				}
			}
		}
	}()

	hs := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopWatch()
		<-watcherDone
		rt.Shutdown()
		return err
	case <-ctx.Done():
	}
	logger.Info("draining")
	stopWatch()
	<-watcherDone
	// Drain outside-in: refuse new solves at the router, stop its
	// listener so in-flight forwards deliver, then drain the router's
	// forwards and finally the managed shards (rt.Shutdown stops them
	// through the runtime).
	rt.StartDraining()
	sctx, cancel := context.WithTimeout(context.Background(), *reqTimeout)
	defer cancel()
	httpErr := hs.Shutdown(sctx)
	rt.Shutdown()
	logger.Info("drained")
	return httpErr
}
