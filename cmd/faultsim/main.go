// Command faultsim reproduces the paper's Figure 1: the average execution
// time of Online-Detection, ABFT-Detection and ABFT-Correction against the
// normalised mean time between failures, for each matrix of the test suite.
// The repetitions of each point fan out across the worker pool (-workers).
//
// Example (fast, downscaled):
//
//	faultsim -scale 32 -reps 10 -points 5
//
// Full paper-scale reproduction (slow), with the machine-readable harness
// records alongside the CSV:
//
//	faultsim -scale 1 -reps 50 -points 7 -csv figure1.csv -json figure1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale    = fs.Int("scale", 16, "matrix downscale factor (1 = full paper size)")
		reps     = fs.Int("reps", 50, "repetitions per point (the paper uses 50)")
		points   = fs.Int("points", 7, "number of MTBF points in [1e2, 1e4]")
		tol      = fs.Float64("tol", 1e-8, "solver tolerance")
		seed     = fs.Int64("seed", 1, "base RNG seed")
		workers  = fs.Int("workers", 0, "worker pool size for the trial fan-out: 0 = GOMAXPROCS, 1 = sequential")
		csvPath  = fs.String("csv", "", "write CSV to this path (default: text to stdout only)")
		jsonPath = fs.String("json", "", "write the per-cell harness result records (JSON) to this path")
		matrices = fs.String("matrices", "", "comma-separated UFL ids (default: all nine)")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	suite, err := sim.SelectSuite(*matrices)
	if err != nil {
		return err
	}

	cfg := sim.Figure1Config{
		Scale:   *scale,
		Reps:    *reps,
		MTBFs:   sim.LogSpace(1e2, 1e4, *points),
		Tol:     *tol,
		Seed:    *seed,
		Workers: *workers,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	series, records := sim.RunFigure1Results(cfg, suite)
	if err := sim.WriteFigure1Text(stdout, series); err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sim.WriteFigure1CSV(f, series); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := harness.WriteResults(f, records); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *jsonPath)
	}
	return nil
}
