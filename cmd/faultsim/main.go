// Command faultsim reproduces the paper's Figure 1: the average execution
// time of Online-Detection, ABFT-Detection and ABFT-Correction against the
// normalised mean time between failures, for each matrix of the test suite.
//
// Example (fast, downscaled):
//
//	faultsim -scale 32 -reps 10 -points 5
//
// Full paper-scale reproduction (slow):
//
//	faultsim -scale 1 -reps 50 -points 7 -csv figure1.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sim"
)

func main() {
	var (
		scale    = flag.Int("scale", 16, "matrix downscale factor (1 = full paper size)")
		reps     = flag.Int("reps", 50, "repetitions per point (the paper uses 50)")
		points   = flag.Int("points", 7, "number of MTBF points in [1e2, 1e4]")
		tol      = flag.Float64("tol", 1e-8, "solver tolerance")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write CSV to this path (default: text to stdout only)")
		matrices = flag.String("matrices", "", "comma-separated UFL ids (default: all nine)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	suite := sim.PaperSuite
	if *matrices != "" {
		suite = nil
		for _, part := range strings.Split(*matrices, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultsim: bad matrix id %q: %v\n", part, err)
				os.Exit(2)
			}
			m, ok := sim.SuiteByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "faultsim: unknown matrix id %d\n", id)
				os.Exit(2)
			}
			suite = append(suite, m)
		}
	}

	cfg := sim.Figure1Config{
		Scale: *scale,
		Reps:  *reps,
		MTBFs: sim.LogSpace(1e2, 1e4, *points),
		Tol:   *tol,
		Seed:  *seed,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	series := sim.RunFigure1(cfg, suite)
	if err := sim.WriteFigure1Text(os.Stdout, series); err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sim.WriteFigure1CSV(f, series); err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}
