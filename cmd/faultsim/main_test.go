package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
)

func TestRunSmallSweep(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "fig1.csv")
	jsonPath := filepath.Join(dir, "fig1.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "128", "-reps", "1", "-points", "2",
		"-matrices", "341", "-seed", "2", "-q", "-csv", csv, "-json", jsonPath,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v) failed: %v", args, err)
	}
	if !strings.Contains(stdout.String(), "Matrix #341") {
		t.Fatalf("text output missing matrix header:\n%s", stdout.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "matrix,n,scheme,mtbf,mean_time,ci95,failures") {
		t.Fatalf("CSV header missing:\n%s", string(data[:min(len(data), 120)]))
	}
	// 1 matrix x 3 schemes x 2 points + header.
	if lines := strings.Count(strings.TrimSpace(string(data)), "\n"); lines != 6 {
		t.Fatalf("CSV has %d data rows, want 6", lines)
	}
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := harness.ReadResults(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 {
		t.Fatalf("JSON has %d records, want one per cell (6)", len(records))
	}
	for _, r := range records {
		if r.Schema != harness.SchemaVersion || !strings.HasPrefix(r.Scenario.Name, "figure1/m341/") {
			t.Fatalf("unexpected record: %+v", r.Scenario)
		}
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-matrices", "no-such"}, "bad matrix id"},
		{[]string{"-matrices", "123456"}, "unknown matrix id 123456"},
		{[]string{"-bogus-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(tc.args, &stdout, &stderr); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("run(%v) error = %v, want containing %q", tc.args, err, tc.wantErr)
		}
	}
}

func TestSelectSuiteDefaultsToAllNine(t *testing.T) {
	suite, err := sim.SelectSuite("")
	if err != nil || len(suite) != 9 {
		t.Fatalf("SelectSuite(\"\") = %d matrices, err %v", len(suite), err)
	}
	suite, err = sim.SelectSuite("341, 2213")
	if err != nil || len(suite) != 2 || suite[0].ID != 341 || suite[1].ID != 2213 {
		t.Fatalf("SelectSuite subset = %v, err %v", suite, err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
