package repro

import (
	"math"
	"testing"

	"repro/internal/abft"
	"repro/internal/checksum"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sparse"
)

// This file pins the bitwise contract of the blocked multi-RHS tier on
// every matrix of the paper suite, exactly the way fused_test.go pins the
// fused kernels: a blocked product must produce each column's bits of the
// corresponding single-vector kernel, and a blocked solve (k > 1) must
// reproduce, per right-hand side, the exact residual history, statistics
// and outcome of solving that system alone.

func TestBlockedKernelsBitwiseOnSuite(t *testing.T) {
	const k = 4
	for id, a := range suiteInstances(t) {
		xs := make([][]float64, k)
		for j := range xs {
			xs[j] = randVec(a.Cols, int64(id)+int64(j)*977)
		}
		ysRef := make([][]float64, k)
		ys := make([][]float64, k)
		for j := range ys {
			ysRef[j] = make([]float64, a.Rows)
			ys[j] = make([]float64, a.Rows)
		}

		// Plain blocked product vs k single products.
		for j := range xs {
			a.MulVec(ysRef[j], xs[j])
		}
		a.MulVecBlock(ys, xs)
		for j := range xs {
			if !bitsEqual(ysRef[j], ys[j]) {
				t.Errorf("matrix %d: MulVecBlock column %d differs from MulVec", id, j)
			}
		}

		// Fused blocked product+checksums vs k single fused products.
		s1s := make([]float64, k)
		s2s := make([]float64, k)
		a.MulVecSumsBlock(ys, xs, s1s, s2s)
		for j := range xs {
			s1Ref, s2Ref := a.MulVecSums(ysRef[j], xs[j])
			if !bitsEqual(ysRef[j], ys[j]) {
				t.Errorf("matrix %d: MulVecSumsBlock column %d differs from MulVecSums", id, j)
			}
			if math.Float64bits(s1s[j]) != math.Float64bits(s1Ref) || math.Float64bits(s2s[j]) != math.Float64bits(s2Ref) {
				t.Errorf("matrix %d: blocked sums col %d (%v,%v) != single (%v,%v)", id, j, s1s[j], s2s[j], s1Ref, s2Ref)
			}
		}

		// Protected blocked product vs k protected single products: columns,
		// the shared Rowidx sums and the per-column verification outcome.
		p := abft.NewProtected(a, abft.DetectCorrect)
		var srRef abft.RowSums
		for j := range xs {
			srRef = p.MulVec(ysRef[j], xs[j])
		}
		sr := p.MulVecBlock(ys, xs)
		if math.Float64bits(sr.S1) != math.Float64bits(srRef.S1) || math.Float64bits(sr.S2) != math.Float64bits(srRef.S2) {
			t.Errorf("matrix %d: blocked RowSums (%v,%v) != single (%v,%v)", id, sr.S1, sr.S2, srRef.S1, srRef.S2)
		}
		for j := range xs {
			if !bitsEqual(ysRef[j], ys[j]) {
				t.Errorf("matrix %d: Protected.MulVecBlock column %d differs from Protected.MulVec", id, j)
			}
			ref := checksum.NewVector(xs[j])
			if out := p.Verify(ys[j], xs[j], ref, sr); out.Detected {
				t.Errorf("matrix %d: false positive verifying blocked column %d: %+v", id, j, out)
			}
		}
	}
}

// blockedSchemes are the axis combinations the true blocked drivers cover;
// every other combination dispatches to bitwise-trivially-equal sequential
// solves (see TestBlockedSolveFallbackBitwise).
var blockedSchemes = []string{"unprotected", "abft-detection", "abft-correction"}

func TestBlockedSolveBitwiseOnSuite(t *testing.T) {
	const k = 3
	for id, a := range suiteInstances(t) {
		bs := make([][]float64, k)
		seeds := make([]int64, k)
		for j := range bs {
			bs[j], _ = harness.RHS(a, int64(id)+int64(j)*101)
			seeds[j] = int64(j + 1)
		}
		for _, scheme := range blockedSchemes {
			sc := harness.Scenario{Name: "blocked/" + scheme, Solver: "cg", Scheme: scheme, MaxIters: 150}

			blockHists := make([][]float64, k)
			onIter := func(rhs, it int, rho float64) { blockHists[rhs] = append(blockHists[rhs], rho) }
			sts := make([]core.Stats, k)
			errs := make([]error, k)
			if err := harness.SolveBlockWith(a, bs, sc, seeds, harness.BlockOpts{OnIteration: onIter}, sts, errs); err != nil {
				t.Fatalf("matrix %d %s: SolveBlockWith: %v", id, scheme, err)
			}

			for j := 0; j < k; j++ {
				var seqHist []float64
				_, seqSt, seqErr := harness.SolveWith(a, bs[j], sc, seeds[j], harness.SolveOpts{
					OnIteration: func(_ int, rho float64) { seqHist = append(seqHist, rho) },
				})
				if !bitsEqual(blockHists[j], seqHist) {
					t.Errorf("matrix %d %s rhs %d: blocked residual history differs from sequential (%d vs %d iters)",
						id, scheme, j, len(blockHists[j]), len(seqHist))
				}
				if sts[j] != seqSt {
					t.Errorf("matrix %d %s rhs %d: blocked stats %+v != sequential %+v", id, scheme, j, sts[j], seqSt)
				}
				if (errs[j] == nil) != (seqErr == nil) || (errs[j] != nil && errs[j].Error() != seqErr.Error()) {
					t.Errorf("matrix %d %s rhs %d: blocked err %v != sequential %v", id, scheme, j, errs[j], seqErr)
				}
			}
		}
	}
}

// TestBlockedSolveFallbackBitwise exercises the sequential-fallback
// dispatch (axes outside the blocked drivers' coverage) and pins that it,
// too, reproduces per-RHS sequential results exactly.
func TestBlockedSolveFallbackBitwise(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	const k = 2
	bs := make([][]float64, k)
	seeds := make([]int64, k)
	for j := range bs {
		bs[j], _ = harness.RHS(a, int64(j)*31)
		seeds[j] = int64(100 + j)
	}
	cases := []harness.Scenario{
		{Name: "fallback/pcg", Solver: "pcg", Scheme: "abft-correction"},
		{Name: "fallback/online", Solver: "cg", Scheme: "online-detection"},
		{Name: "fallback/faulty", Solver: "cg", Scheme: "abft-correction", Alpha: 0.2},
	}
	for _, sc := range cases {
		blockHists := make([][]float64, k)
		onIter := func(rhs, it int, rho float64) { blockHists[rhs] = append(blockHists[rhs], rho) }
		sts := make([]core.Stats, k)
		errs := make([]error, k)
		if err := harness.SolveBlockWith(a, bs, sc, seeds, harness.BlockOpts{OnIteration: onIter}, sts, errs); err != nil {
			t.Fatalf("%s: SolveBlockWith: %v", sc.Name, err)
		}
		for j := 0; j < k; j++ {
			var seqHist []float64
			scj := sc
			scj.Seed = seeds[j]
			_, seqSt, seqErr := harness.SolveWith(a, bs[j], scj, seeds[j], harness.SolveOpts{
				OnIteration: func(_ int, rho float64) { seqHist = append(seqHist, rho) },
			})
			if !bitsEqual(blockHists[j], seqHist) {
				t.Errorf("%s rhs %d: fallback residual history differs from sequential", sc.Name, j)
			}
			if sts[j] != seqSt {
				t.Errorf("%s rhs %d: fallback stats differ", sc.Name, j)
			}
			if (errs[j] == nil) != (seqErr == nil) {
				t.Errorf("%s rhs %d: fallback err %v != sequential %v", sc.Name, j, errs[j], seqErr)
			}
		}
	}
}

// TestBlockedSolveReusedWorkspace pins that a warm BlockWorkspaces bundle
// reproduces the cold bits across repeated and width-varying blocks.
func TestBlockedSolveReusedWorkspace(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	ws := harness.NewBlockWorkspaces()
	sc := harness.Scenario{Name: "blocked/reuse", Solver: "cg", Scheme: "abft-correction"}
	for _, k := range []int{3, 1, 4, 3} {
		bs := make([][]float64, k)
		seeds := make([]int64, k)
		for j := range bs {
			bs[j], _ = harness.RHS(a, int64(j)*17)
			seeds[j] = int64(j)
		}
		hists := make([][]float64, k)
		onIter := func(rhs, it int, rho float64) { hists[rhs] = append(hists[rhs], rho) }
		sts := make([]core.Stats, k)
		errs := make([]error, k)
		if err := harness.SolveBlockWith(a, bs, sc, seeds, harness.BlockOpts{Ws: ws, OnIteration: onIter}, sts, errs); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for j := 0; j < k; j++ {
			var seqHist []float64
			_, _, err := harness.SolveWith(a, bs[j], sc, seeds[j], harness.SolveOpts{
				OnIteration: func(_ int, rho float64) { seqHist = append(seqHist, rho) },
			})
			if err != nil {
				t.Fatalf("k=%d rhs %d: sequential: %v", k, j, err)
			}
			if !bitsEqual(hists[j], seqHist) {
				t.Errorf("k=%d rhs %d: warm blocked history differs from sequential", k, j)
			}
			if !sts[j].Converged {
				t.Errorf("k=%d rhs %d: not converged", k, j)
			}
		}
	}
}
